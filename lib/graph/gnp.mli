(** Sparse random graphs, BFS, diameter, connectivity.

    Section 9 proposes "graph connectivity" and "finding the diameter of a
    random graph (the average degree must be chosen to be low enough so
    that the diameter is not 2 with high probability)" as targets for the
    lower-bound technique.  This module supplies the substrate: the
    [G(n, p)] distribution at adjustable density (symmetric edges, so the
    classical theory applies), breadth-first search, eccentricities,
    diameter, and connectivity — everything the corresponding experiment
    sweeps. *)

val sample : Prng.t -> n:int -> p:float -> Digraph.t
(** An undirected-style sample: each unordered pair becomes a
    bidirectional edge with probability [p]. *)

val connectivity_threshold : int -> float
(** [ln n / n], the sharp threshold for connectivity. *)

val diameter_two_threshold : int -> float
(** [sqrt (2 ln n / n)]: above this, diameter 2 w.h.p. — densities for the
    diameter experiment must sit below it. *)

val bfs_distances : Digraph.t -> int -> int array
(** Distances from a source following edges forward; unreachable = -1. *)

val eccentricity : Digraph.t -> int -> int option
(** Max distance from the vertex; [None] if some vertex is unreachable. *)

val diameter : Digraph.t -> int option
(** Max eccentricity; [None] if the graph is not (strongly) connected. *)

val is_connected : Digraph.t -> bool

val largest_component_size : Digraph.t -> int
(** Size of the largest weakly-connected component (treating every edge as
    undirected), the giant-component statistic. *)
