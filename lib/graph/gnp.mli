(** Sparse random graphs, BFS, diameter, connectivity.

    Section 9 proposes "graph connectivity" and "finding the diameter of a
    random graph (the average degree must be chosen to be low enough so
    that the diameter is not 2 with high probability)" as targets for the
    lower-bound technique.  This module supplies the substrate: the
    [G(n, p)] distribution at adjustable density (symmetric edges, so the
    classical theory applies), breadth-first search, eccentricities,
    diameter, and connectivity — everything the corresponding experiment
    sweeps. *)

val sample : Prng.t -> n:int -> p:float -> Digraph.t
(** An undirected-style sample: each unordered pair becomes a
    bidirectional edge with probability [p].  One [Prng.bernoulli] per
    pair — the draw-per-pair pattern the resource-accounting experiments
    meter — so keep this one where bit counts matter. *)

val sample_fast : Prng.t -> n:int -> p:float -> Digraph.t
(** Same distribution as {!sample}, by geometric skipping: pairs are
    enumerated in a fixed linear order and the gap to the next edge is
    drawn as [floor(ln(1-U) / ln(1-p))], so the expected draw count is
    [O(n^2 p + n)] instead of [n(n-1)/2].  Use in Monte-Carlo loops where
    only the sampled graph matters; the per-pair randomness accounting of
    {!sample} is not reproduced (different draws, same distribution). *)

val connectivity_threshold : int -> float
(** [ln n / n], the sharp threshold for connectivity. *)

val diameter_two_threshold : int -> float
(** [sqrt (2 ln n / n)]: above this, diameter 2 w.h.p. — densities for the
    diameter experiment must sit below it. *)

val bfs_distances : Digraph.t -> int -> int array
(** Distances from a source following edges forward; unreachable = -1. *)

val eccentricity : Digraph.t -> int -> int option
(** Max distance from the vertex; [None] if some vertex is unreachable. *)

val diameter : Digraph.t -> int option
(** Max eccentricity; [None] if the graph is not (strongly) connected. *)

val is_connected : Digraph.t -> bool

val largest_component_size : Digraph.t -> int
(** Size of the largest weakly-connected component (treating every edge as
    undirected), the giant-component statistic. *)
