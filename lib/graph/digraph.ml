type t = { n : int; adj : Bitvec.t array }

let create n =
  if n < 0 then invalid_arg "Digraph.create";
  { n; adj = Array.init n (fun _ -> Bitvec.create n) }

let vertex_count g = g.n

let check_vertex g i =
  if i < 0 || i >= g.n then invalid_arg "Digraph: vertex out of range"

let has_edge g i j =
  check_vertex g i;
  check_vertex g j;
  i <> j && Bitvec.get g.adj.(i) j

let add_edge g i j =
  check_vertex g i;
  check_vertex g j;
  if i <> j then Bitvec.set g.adj.(i) j true

(* bcc-lint: allow kern/unsafe-index — exported unsafe primitive: the .mli contract makes the caller guarantee i, j < n (Gnp's sampler loops run over 0..n-1) *)
let unsafe_add_edge g i j = Bitvec.unsafe_set_bit g.adj.(i) j

let remove_edge g i j =
  check_vertex g i;
  check_vertex g j;
  Bitvec.set g.adj.(i) j false

let of_matrix m =
  let n = Gf2_matrix.rows m in
  if Gf2_matrix.cols m <> n then invalid_arg "Digraph.of_matrix: not square";
  let g = create n in
  for i = 0 to n - 1 do
    let r = Gf2_matrix.row m i in
    Bitvec.set r i false;
    g.adj.(i) <- r
  done;
  g

let to_matrix g = Gf2_matrix.of_rows g.adj

let out_row g i =
  check_vertex g i;
  Bitvec.copy g.adj.(i)

let iter_out g i f =
  check_vertex g i;
  Bitvec.iter_set f g.adj.(i)

let set_out_row g i r =
  check_vertex g i;
  if Bitvec.length r <> g.n then invalid_arg "Digraph.set_out_row: length mismatch";
  let r = Bitvec.copy r in
  Bitvec.set r i false;
  g.adj.(i) <- r

let install_out_row g i r =
  check_vertex g i;
  if Bitvec.length r <> g.n then
    invalid_arg "Digraph.install_out_row: length mismatch";
  Bitvec.set r i false;
  g.adj.(i) <- r

let unsafe_rows g = g.adj

let out_degree g i =
  check_vertex g i;
  Bitvec.popcount g.adj.(i)

let in_degree g j =
  check_vertex g j;
  let d = ref 0 in
  for i = 0 to g.n - 1 do
    if Bitvec.get g.adj.(i) j then incr d
  done;
  !d

let edge_count g = Array.fold_left (fun acc r -> acc + Bitvec.popcount r) 0 g.adj

let is_bidirectional_clique g vs =
  List.for_all
    (fun i -> List.for_all (fun j -> i = j || (has_edge g i j && has_edge g j i)) vs)
    vs

let common_out_neighbors g i j =
  check_vertex g i;
  check_vertex g j;
  Bitvec.logand g.adj.(i) g.adj.(j)

let count_common_out_neighbors g i j =
  check_vertex g i;
  check_vertex g j;
  Bitvec.popcount_and2 g.adj.(i) g.adj.(j)

let copy g = { g with adj = Array.map Bitvec.copy g.adj }

let equal a b = a.n = b.n && Array.for_all2 Bitvec.equal a.adj b.adj

let pp fmt g =
  for i = 0 to g.n - 1 do
    if i > 0 then Format.pp_print_newline fmt ();
    Bitvec.pp fmt g.adj.(i)
  done
