(** Sparse graphs as compressed sparse rows — the n = 10^5..10^6 regime.

    The dense {!Digraph} bit matrix spends O(n^2) bits whatever the edge
    density; in the sparse regimes the paper's asymptotics actually need
    (planted cliques at [p = n^{-1/2}], the sparse-regime protocols) that
    caps experiments near n = 2^12.  This module stores only the present
    edges: {!Bcc_kern.Spgraph}'s row-offset + sorted-column layout, built
    either from an existing [Digraph] or directly from the G(n, p)
    geometric-skip sampler without ever materializing a dense matrix.

    Sampling is {b stream-identical} to the dense path: {!sample_gnp}
    makes exactly the draws [Gnp.sample_fast] makes, in the same order,
    and {!sample_planted} draws the clique subset first like
    [Planted.sample_planted] — so dense artifact pins are untouched and
    dense/sparse runs on a shared seed sample the same graph
    (test/test_sparse.ml pins both).  Layout, oracle discipline and the
    dense/sparse crossover: docs/PERFORMANCE.md. *)

type t = Bcc_kern.Spgraph.t
(** The kernel-layer CSR, shared so {!Bcc_kern.Spgraph} kernels apply
    directly. *)

val of_digraph : Digraph.t -> t
(** Exact CSR of the dense adjacency (rows come out sorted because
    [Digraph.iter_out] visits ascending). *)

val to_digraph : t -> Digraph.t
(** Dense twin — the bridge to the dense oracle kernels at small n. *)

val vertex_count : t -> int

val edge_count : t -> int
(** Directed entry count, [Digraph.edge_count]'s convention. *)

val has_edge : t -> int -> int -> bool
(** Galloping row search ({!Bcc_kern.Spgraph.mem}). *)

val out_degree : t -> int -> int

val iter_out : t -> int -> (int -> unit) -> unit
(** Out-neighbours in ascending order. *)

val count_common_out_neighbors : t -> int -> int -> int
(** [|N(i) ∩ N(j)|] by sorted-merge intersection — the common-neighbor
    distinguisher statistic. *)

val degree_sums : t -> int array
(** Per-vertex out + in degree in one O(n + m) histogram pass (dense
    [in_degree] is an O(n) column scan per vertex). *)

val sample_gnp : ?stream_cap:int -> Prng.t -> n:int -> p:float -> t
(** G(n, p) straight into CSR: [Gnp.sample_fast]'s geometric-skip decode
    — the skip lengths {e are} the column gaps — with the pairs appended
    to an edge buffer and counting-sorted into rows.  Identical PRNG
    stream, identical graph, O(n + m) memory.  The skips are decoded in
    blocks by {!Prng.Block.fill_geometric}; the final block is rewound
    and replayed so the generator ends exactly where the scalar decode
    would ({!sample_gnp_scalar} is the pinned-equal reference).

    [?stream_cap] overrides the initial pair-stream capacity (default:
    binomial mean + 6 sigma) to force the geometric-growth path in
    tests; the sampled graph is identical for any value. *)

val sample_gnp_scalar : Prng.t -> n:int -> p:float -> t
(** The pre-batching sampler, frozen: one scalar [Prng.float] per skip,
    direct-scatter CSR build.  Same stream and same graph as
    {!sample_gnp} (test/test_sparse.ml pins them equal on shared
    seeds); kept as the in-run equality oracle and the [bench prng]
    baseline. *)

val sample_gnp_sharded : Prng.t -> n:int -> p:float -> t
(** Parallel G(n, p) for the n = 10^6 rung: the pair-index walk is cut
    into a fixed number of equal slices (a function of n only, never of
    the pool size), each decoded on its own [Prng.split] child stream by
    a word-level integer-threshold skip decode (no [log] in the hot
    loop), then merged deterministically in slice order.  Byte-identical
    output at any [BCC_DOMAINS].

    This is a {b new, documented stream}: thresholds
    [round ((1 - (1-p)^k) * 2^53)] invert the geometric CDF at the same
    2^-53 granularity as the float decode, but the bit-level draws
    differ from {!sample_gnp}, and the parent generator is never
    advanced (children derive from [split]).  Requires [n < 2^30].
    Rationale and stream spec: docs/PERFORMANCE.md "Batched draws". *)

val sample_planted_sharded :
  Prng.t -> n:int -> p:float -> k:int -> t * int list
(** {!sample_planted} over the sharded base sampler: clique subset first
    from the parent stream ([Prng.subset], same position as
    {!sample_planted}), then {!sample_gnp_sharded} (parent untouched),
    then the clique overlay.  After the call the parent stream sits
    exactly one [subset] past where it started. *)

val sample_rand : Prng.t -> n:int -> p:float -> t
(** The sparse-regime null model — alias of {!sample_gnp}.  (The dense
    [Planted.sample_rand] is the p = 1/2 special case, where a CSR would
    be larger than the bit matrix; sparse experiments state their p
    explicitly.) *)

val sample_planted : Prng.t -> n:int -> p:float -> k:int -> (t * int list)
(** Planted clique over the G(n, p) base: clique subset first
    ([Prng.subset], matching [Planted.sample_planted]'s draw order), then
    the {!sample_gnp} stream, then a sorted-merge union of the clique
    pairs into the affected rows.  Returns the instance and the planted
    set. *)
