(** Sparse graphs as compressed sparse rows — the n = 10^5..10^6 regime.

    The dense {!Digraph} bit matrix spends O(n^2) bits whatever the edge
    density; in the sparse regimes the paper's asymptotics actually need
    (planted cliques at [p = n^{-1/2}], the sparse-regime protocols) that
    caps experiments near n = 2^12.  This module stores only the present
    edges: {!Bcc_kern.Spgraph}'s row-offset + sorted-column layout, built
    either from an existing [Digraph] or directly from the G(n, p)
    geometric-skip sampler without ever materializing a dense matrix.

    Sampling is {b stream-identical} to the dense path: {!sample_gnp}
    makes exactly the draws [Gnp.sample_fast] makes, in the same order,
    and {!sample_planted} draws the clique subset first like
    [Planted.sample_planted] — so dense artifact pins are untouched and
    dense/sparse runs on a shared seed sample the same graph
    (test/test_sparse.ml pins both).  Layout, oracle discipline and the
    dense/sparse crossover: docs/PERFORMANCE.md. *)

type t = Bcc_kern.Spgraph.t
(** The kernel-layer CSR, shared so {!Bcc_kern.Spgraph} kernels apply
    directly. *)

val of_digraph : Digraph.t -> t
(** Exact CSR of the dense adjacency (rows come out sorted because
    [Digraph.iter_out] visits ascending). *)

val to_digraph : t -> Digraph.t
(** Dense twin — the bridge to the dense oracle kernels at small n. *)

val vertex_count : t -> int

val edge_count : t -> int
(** Directed entry count, [Digraph.edge_count]'s convention. *)

val has_edge : t -> int -> int -> bool
(** Galloping row search ({!Bcc_kern.Spgraph.mem}). *)

val out_degree : t -> int -> int

val iter_out : t -> int -> (int -> unit) -> unit
(** Out-neighbours in ascending order. *)

val count_common_out_neighbors : t -> int -> int -> int
(** [|N(i) ∩ N(j)|] by sorted-merge intersection — the common-neighbor
    distinguisher statistic. *)

val degree_sums : t -> int array
(** Per-vertex out + in degree in one O(n + m) histogram pass (dense
    [in_degree] is an O(n) column scan per vertex). *)

val sample_gnp : Prng.t -> n:int -> p:float -> t
(** G(n, p) straight into CSR: [Gnp.sample_fast]'s geometric-skip decode
    verbatim — the skip lengths {e are} the column gaps — with the pairs
    appended to an edge buffer and counting-sorted into rows.  Identical
    PRNG stream, identical graph, O(n + m) memory. *)

val sample_rand : Prng.t -> n:int -> p:float -> t
(** The sparse-regime null model — alias of {!sample_gnp}.  (The dense
    [Planted.sample_rand] is the p = 1/2 special case, where a CSR would
    be larger than the bit matrix; sparse experiments state their p
    explicitly.) *)

val sample_planted : Prng.t -> n:int -> p:float -> k:int -> (t * int list)
(** Planted clique over the G(n, p) base: clique subset first
    ([Prng.subset], matching [Planted.sample_planted]'s draw order), then
    the {!sample_gnp} stream, then a sorted-merge union of the clique
    pairs into the affected rows.  Returns the instance and the planted
    set. *)
