(** Directed graphs on vertex set [{0..n-1}] as adjacency bit matrices.

    The paper's inputs are matrices [A ∈ {0,1}^{n×n}] with [A_{i,i} = 0];
    processor [i] receives row [i] (its out-neighbourhood indicator).  The
    representation here is exactly that: one {!Bitvec.t} per vertex. *)

type t

val create : int -> t
(** [create n]: n vertices, no edges. *)

val of_matrix : Gf2_matrix.t -> t
(** Uses the matrix as adjacency; diagonal entries are cleared. *)

val to_matrix : t -> Gf2_matrix.t

val vertex_count : t -> int
val has_edge : t -> int -> int -> bool
(** [has_edge g i j]: directed edge [i -> j].  [has_edge g i i] is false. *)

val add_edge : t -> int -> int -> unit
val remove_edge : t -> int -> int -> unit

val unsafe_add_edge : t -> int -> int -> unit
(** [add_edge] without bounds or diagonal checks — the unchecked row
    writer for samplers whose loop structure already guarantees
    [0 <= i, j < n] and [i <> j] (e.g. [Gnp.sample_fast]'s geometric-skip
    decoder).  Violating either precondition corrupts the graph. *)

val out_row : t -> int -> Bitvec.t
(** A copy of vertex [i]'s out-adjacency row — processor [i]'s input. *)

val iter_out : t -> int -> (int -> unit) -> unit
(** Visit vertex [i]'s out-neighbours in ascending order, scanning the
    live row — no {!out_row} copy.  The callback must not mutate the
    graph. *)

val set_out_row : t -> int -> Bitvec.t -> unit
(** Copies the row in; the diagonal bit is cleared. *)

val install_out_row : t -> int -> Bitvec.t -> unit
(** Like {!set_out_row} but takes ownership of the vector instead of
    copying it (the diagonal bit is still cleared); the caller must not
    use the row afterwards.  For samplers that build each row once. *)

val unsafe_rows : t -> Bitvec.t array
(** The live adjacency rows, shared with the graph — the packed-kernel
    view ({!Bcc_kern.Graph} operates on it without per-row copies).
    Callers must not mutate the rows or the array. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val edge_count : t -> int

val is_bidirectional_clique : t -> int list -> bool
(** Whether all ordered pairs of distinct vertices in the list are edges —
    the paper's clique predicate for directed graphs. *)

val common_out_neighbors : t -> int -> int -> Bitvec.t
(** Intersection of the two out-rows. *)

val count_common_out_neighbors : t -> int -> int -> int
(** [popcount (common_out_neighbors g i j)] without materializing the
    intersection — the common-neighbor distinguisher statistic. *)

val copy : t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
