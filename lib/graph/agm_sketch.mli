(** XOR linear sketches for edge-incidence vectors (AGM-style).

    Section 9 names "graph connectivity" as a target problem.  The
    standard distributed/streaming tool is the Ahn-Guha-McGregor linear
    sketch: a vertex's edge-incidence vector is compressed to
    [O(log^2 n)] bits such that (1) sketches are {e linear} — the sketch
    of a component's cut is the XOR of its members' sketches, because
    internal edges cancel — and (2) a nonzero sketched vector yields one
    of its coordinates with constant probability (1-sparse recovery over
    geometrically subsampled levels).

    The hash functions are derived from a public seed, so in the
    Broadcast Congested Clique all processors agree on them without
    communication (public coins); sketches travel as bit vectors. *)

type params = { universe : int; seed : int }
(** [universe]: number of coordinates (edge slots); [seed]: public seed
    defining the level hash and checksums. *)

type t
(** A sketch; mutable accumulator. *)

val create : params -> t
(** The sketch of the zero vector. *)

val params_of : t -> params
val levels : params -> int
(** [ceil(log2 universe) + 2] subsampling levels. *)

val add : t -> int -> unit
(** XOR coordinate [i] into the sketched vector ([0 <= i < universe]).
    Adding twice cancels. *)

val xor_inplace : t -> t -> unit
(** [xor_inplace dst src]: linearity — dst becomes the sketch of the XOR
    of the two vectors.  Same params required. *)

val copy : t -> t

val recover : t -> int option
(** A coordinate of the sketched vector, if some level is 1-sparse and
    passes the checksum.  [None] for the zero vector or on failure
    (constant probability per nonzero vector). *)

val is_zero : t -> bool
(** True iff every level is empty — for sketches of actual vectors this
    means the vector is zero (no false negatives; false positives would
    require checksum collisions). *)

val bit_size : params -> int
(** Size of the broadcast encoding: [levels * (id_bits + 32)] bits. *)

val to_bitvec : t -> Bitvec.t
val of_bitvec : params -> Bitvec.t -> t
(** Broadcast encoding round-trip. *)
