let hamiltonicity_threshold n =
  let nf = float_of_int (max 3 n) in
  (Float.log nf +. Float.log (Float.log nf)) /. nf

let sample_planted_cycle g ~n ~p =
  (* Geometric-skip sampler: O(pn^2 + n) draws instead of one Bernoulli per
     pair.  Different PRNG stream than [Gnp.sample] — e23 artifacts were
     re-pinned when this switched (see EXPERIMENTS.md). *)
  let graph = Gnp.sample_fast g ~n ~p in
  let cycle = Prng.permutation g n in
  for i = 0 to n - 1 do
    let a = cycle.(i) and b = cycle.((i + 1) mod n) in
    Digraph.add_edge graph a b;
    Digraph.add_edge graph b a
  done;
  (graph, cycle)

let is_hamiltonian_cycle graph perm =
  let n = Digraph.vertex_count graph in
  Array.length perm = n
  && (let seen = Array.make n false in
      Array.for_all
        (fun v -> v >= 0 && v < n && not seen.(v) && (seen.(v) <- true; true))
        perm)
  && (let ok = ref true in
      for i = 0 to n - 1 do
        let a = perm.(i) and b = perm.((i + 1) mod n) in
        if not (Digraph.has_edge graph a b && Digraph.has_edge graph b a) then ok := false
      done;
      !ok)

(* Angluin-Valiant rotation-extension on the bidirectional core. *)
let find_cycle g graph ~max_steps =
  let n = Digraph.vertex_count graph in
  if n = 0 then Some [||]
  else begin
    let adj = Clique.bidirectional_core graph in
    let path = Array.make n (-1) in
    let pos = Array.make n (-1) in
    let len = ref 1 in
    let start = Prng.int g n in
    path.(0) <- start;
    pos.(start) <- 0;
    let steps = ref 0 in
    let result = ref None in
    while !result = None && !steps < max_steps do
      incr steps;
      let tail = path.(!len - 1) in
      let neighbors = Bitvec.indices_set adj.(tail) in
      if neighbors = [] then result := Some None (* dead end: fail *)
      else begin
        let u = List.nth neighbors (Prng.int g (List.length neighbors)) in
        if pos.(u) < 0 then begin
          (* Extend. *)
          path.(!len) <- u;
          pos.(u) <- !len;
          incr len
        end
        else if !len = n && u = path.(0) then begin
          (* Close the Hamilton cycle. *)
          result := Some (Some (Array.copy path))
        end
        else begin
          let i = pos.(u) in
          if i < !len - 1 then begin
            (* Rotate: reverse path[i+1 .. len-1]. *)
            let lo = ref (i + 1) and hi = ref (!len - 1) in
            while !lo < !hi do
              let a = path.(!lo) and b = path.(!hi) in
              path.(!lo) <- b;
              path.(!hi) <- a;
              pos.(b) <- !lo;
              pos.(a) <- !hi;
              incr lo;
              decr hi
            done
          end
        end
      end
    done;
    match !result with Some r -> r | None -> None
  end
