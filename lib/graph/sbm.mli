(** The stochastic block model — one of the "natural input distributions"
    Section 9 proposes attacking with the paper's technique.

    Two hidden communities of [n/2] vertices; a directed edge appears with
    probability [p_in] inside a community and [p_out] across.  At
    [p_in = p_out = 1/2] this {e is} [A_rand]; the community structure
    fades as [p_in − p_out -> 0], giving a hardness dial analogous to the
    clique size [k].  The module also provides the natural degree-based
    membership statistic, so the distinguisher machinery of
    {!Distinguishers}/{!Advantage} applies unchanged. *)

type community = int array
(** [community.(v)] is 0 or 1. *)

val sample : Prng.t -> n:int -> p_in:float -> p_out:float -> Digraph.t * community
(** A balanced two-community sample (vertex [v] is in community
    [v mod 2]-independent random side). *)

val sample_null : Prng.t -> n:int -> Digraph.t
(** The matched null model: every directed edge with the average density
    [(p_in + p_out) / 2], so edge-count statistics alone cannot
    distinguish — structure has to be found. *)

val alignment : community -> community -> float
(** Fraction of vertices on which two labellings agree, maximized over the
    global label swap: 1.0 = perfect recovery, ~0.5 = chance. *)

val degree_profile_recover : Digraph.t -> community
(** The simple spectral-free heuristic: seed with vertex 0's out-
    neighbourhood and iterate majority reassignment a few times.  Works
    when [p_in − p_out] is large; degrades to chance as it vanishes. *)

val bisection_edge_statistic : Prng.t -> Digraph.t -> float
(** The distinguishing statistic: for a random balanced bisection refined
    greedily, the fraction of within-side edges minus the across-side
    fraction.  Elevated under the SBM, ~0 under the null. *)
