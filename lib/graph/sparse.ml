module Spgraph = Bcc_kern.Spgraph
module Buf = Bcc_kern.Buf

type t = Spgraph.t

let vertex_count = Spgraph.vertex_count
let edge_count = Spgraph.edge_count
let out_degree = Spgraph.degree
let iter_out = Spgraph.iter_row
let has_edge = Spgraph.mem
let count_common_out_neighbors = Spgraph.common_count

(* bcc-lint: allow kern/unsafe-index — the fill cursor never passes row_ptr.(n) = Buf.int_length cols: row i writes exactly out_degree g i entries and the offsets are their prefix sums *)
let of_digraph g =
  let n = Digraph.vertex_count g in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + Digraph.out_degree g i
  done;
  let cols = Buf.int_create row_ptr.(n) in
  let out = ref 0 in
  for i = 0 to n - 1 do
    (* [iter_out] visits ascending, so every row lands sorted. *)
    Digraph.iter_out g i (fun j ->
        Buf.int_set cols !out j;
        incr out)
  done;
  Spgraph.make ~n ~row_ptr ~cols

let to_digraph t =
  let n = Spgraph.vertex_count t in
  let g = Digraph.create n in
  for i = 0 to n - 1 do
    Spgraph.iter_row t i (fun j -> Digraph.add_edge g i j)
  done;
  g

let degree_sums t =
  Spgraph.check_t t;
  let n = Spgraph.vertex_count t in
  let sums = Array.make n 0 in
  for i = 0 to n - 1 do
    sums.(i) <- sums.(i) + Spgraph.degree t i;
    Spgraph.iter_row t i (fun j -> sums.(j) <- sums.(j) + 1)
  done;
  sums

(* Build a CSR from the sampler's forward-pair stream: [fwd_count.(i)]
   pairs (i, j) per row with the j's concatenated row-major in [js]
   (ascending within a row, rows in order — the order the geometric-skip
   sampler emits).  Counting sort over both endpoints; the arrival order
   makes every output row come out ascending (row i first receives its
   smaller neighbours from pairs (u, i) with u increasing, then its
   larger ones from pairs (i, v) with v increasing), so no per-row sort
   is ever needed.  The stream lives on a [Buf.ints] and the only plain
   arrays are O(n) — a 10^7-pair stream adds nothing for the major GC to
   scan (the earlier [int array] pair buffers made every major slice a
   multi-hundred-MB walk). *)
let csr_of_stream ~n ~m fwd_count js =
  if m < 0 || m > Buf.int_length js then
    invalid_arg "Sparse: pair stream shorter than m";
  if Array.length fwd_count <> n then
    invalid_arg "Sparse: per-row count length mismatch";
  let deg = Array.make (max 1 n) 0 in
  let e = ref 0 in
  for i = 0 to n - 1 do
    deg.(i) <- deg.(i) + fwd_count.(i);
    for _ = 1 to fwd_count.(i) do
      let j = Buf.int_get js !e in
      deg.(j) <- deg.(j) + 1;
      incr e
    done
  done;
  if !e <> m then invalid_arg "Sparse: per-row counts do not sum to m";
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + deg.(i)
  done;
  (* Uninitialized is safe: the cursor prefix sums partition the buffer
     and the loop writes exactly [deg.(i)] entries into row i. *)
  let cols = Buf.int_create_uninit (2 * m) in
  let cursor = Array.init n (fun i -> row_ptr.(i)) in
  let e = ref 0 in
  for i = 0 to n - 1 do
    for _ = 1 to fwd_count.(i) do
      let j = Buf.int_get js !e in
      Buf.int_set cols cursor.(i) j;
      cursor.(i) <- cursor.(i) + 1;
      Buf.int_set cols cursor.(j) i;
      cursor.(j) <- cursor.(j) + 1;
      incr e
    done
  done;
  Spgraph.make ~n ~row_ptr ~cols

(* CSR twin of [Gnp.sample_fast]: the identical geometric-skip decode —
   same [Prng.float] draws in the same order, same cap, same row-major
   pair walk — but the decoded skips are appended to a pair stream
   instead of written into dense rows, so a G(n, p) graph costs
   O(n + m) memory end to end.  test/test_sparse.ml pins
   [sample_gnp] == [of_digraph (Gnp.sample_fast ...)] on shared seeds. *)
let sample_gnp g ~n ~p =
  if n < 0 then invalid_arg "Sparse.sample_gnp: n >= 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Sparse.sample_gnp: p in [0,1]";
  let total = n * (n - 1) / 2 in
  (* Start the stream at the binomial mean plus six sigma so doubling is
     an unlikely-tail event, not the steady state. *)
  let mean = p *. float_of_int total in
  let cap =
    ref
      (min (max 1 total)
         (64 + int_of_float (mean +. (6.0 *. Float.sqrt (mean +. 1.0)))))
  in
  let js = ref (Buf.int_create_uninit !cap) in
  let fwd_count = Array.make (max 1 n) 0 in
  let m = ref 0 in
  let push i j =
    if !m = !cap then begin
      let cap' = min (max 1 total) (2 * !cap) in
      let js' = Buf.int_create_uninit cap' in
      Bigarray.Array1.blit !js (Bigarray.Array1.sub js' 0 !m);
      js := js';
      cap := cap'
    end;
    Buf.int_set !js !m j;
    fwd_count.(i) <- fwd_count.(i) + 1;
    incr m
  in
  if p >= 1.0 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        push i j
      done
    done
  else if p > 0.0 && total > 0 then begin
    let log1mp = Float.log (1.0 -. p) in
    let row = ref 0 in
    let row_start = ref 0 in
    let idx = ref (-1) in
    let continue = ref true in
    while !continue do
      let u = Prng.float g in
      let skip = Float.log (1.0 -. u) /. log1mp in
      (* [skip] is finite and >= 0; cap before truncating so the addition
         below cannot overflow when p is tiny and u is close to 1. *)
      let skip = int_of_float (Float.min skip (float_of_int total)) in
      idx := !idx + 1 + skip;
      if !idx >= total then continue := false
      else begin
        while !idx >= !row_start + (n - 1 - !row) do
          row_start := !row_start + (n - 1 - !row);
          incr row
        done;
        let i = !row in
        let j = i + 1 + (!idx - !row_start) in
        push i j
      end
    done
  end;
  csr_of_stream ~n ~m:!m fwd_count !js

let sample_rand g ~n ~p = sample_gnp g ~n ~p

(* Union the rows of [t] with the clique on [cs]: one count pass, one
   sorted-merge fill pass — existing edges inside the clique dedupe
   against the merge, exactly like [Planted.sample_planted_at]'s
   idempotent [add_edge] calls on the dense side. *)
let overlay_clique t cs =
  Spgraph.check_t t;
  let n = Spgraph.vertex_count t in
  let kc = Array.length cs in
  if kc = 0 then t
  else begin
    let in_c = Array.make n false in
    Array.iter
      (fun v ->
        if v < 0 || v >= n then invalid_arg "Sparse: clique vertex out of range";
        in_c.(v) <- true)
      cs;
    let row_ptr = t.Spgraph.row_ptr and cols = t.Spgraph.cols in
    (* |row i ∪ (cs \ {i})| *)
    let union_size i =
      let a = ref row_ptr.(i) and ae = row_ptr.(i + 1) in
      let b = ref 0 in
      let count = ref 0 in
      while !a < ae && !b < kc do
        let x = Buf.int_get cols !a and y = Array.unsafe_get cs !b in
        if y = i then incr b
        else if x < y then begin
          incr count;
          incr a
        end
        else if y < x then begin
          incr count;
          incr b
        end
        else begin
          incr count;
          incr a;
          incr b
        end
      done;
      count := !count + (ae - !a);
      while !b < kc do
        if Array.unsafe_get cs !b <> i then incr count;
        incr b
      done;
      !count
    in
    let row_ptr' = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      let d =
        if in_c.(i) then union_size i else row_ptr.(i + 1) - row_ptr.(i)
      in
      row_ptr'.(i + 1) <- row_ptr'.(i) + d
    done;
    (* Uninitialized is safe: [emit] writes every slot in order — the
       per-row union sizes sum to exactly [row_ptr'.(n)]. *)
    let cols' = Buf.int_create_uninit row_ptr'.(n) in
    let out = ref 0 in
    let emit j =
      Buf.int_set cols' !out j;
      incr out
    in
    for i = 0 to n - 1 do
      if in_c.(i) then begin
        let a = ref row_ptr.(i) and ae = row_ptr.(i + 1) in
        let b = ref 0 in
        while !a < ae && !b < kc do
          let x = Buf.int_get cols !a and y = Array.unsafe_get cs !b in
          if y = i then incr b
          else if x < y then begin
            emit x;
            incr a
          end
          else if y < x then begin
            emit y;
            incr b
          end
          else begin
            emit x;
            incr a;
            incr b
          end
        done;
        while !a < ae do
          emit (Buf.int_get cols !a);
          incr a
        done;
        while !b < kc do
          let y = Array.unsafe_get cs !b in
          if y <> i then emit y;
          incr b
        done
      end
      else
        for idx = row_ptr.(i) to row_ptr.(i + 1) - 1 do
          emit (Buf.int_get cols idx)
        done
    done;
    Spgraph.make ~n ~row_ptr:row_ptr' ~cols:cols'
  end

(* Sparse-regime planted instance: the clique vertex set is drawn first
   ([Prng.subset]) and the G(n, p) stream second — [Planted.sample_planted]'s
   draw order, so dense and sparse planted instances on a shared seed use
   the PRNG identically. *)
let sample_planted g ~n ~p ~k =
  let c = Prng.subset g ~n ~k in
  let base = sample_gnp g ~n ~p in
  let cs = Array.of_list (List.sort_uniq Int.compare c) in
  (overlay_clique base cs, c)
