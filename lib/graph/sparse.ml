module Spgraph = Bcc_kern.Spgraph
module Buf = Bcc_kern.Buf

type t = Spgraph.t

let vertex_count = Spgraph.vertex_count
let edge_count = Spgraph.edge_count
let out_degree = Spgraph.degree
let iter_out = Spgraph.iter_row
let has_edge = Spgraph.mem
let count_common_out_neighbors = Spgraph.common_count

(* bcc-lint: allow kern/unsafe-index — the fill cursor never passes row_ptr.(n) = Buf.int_length cols: row i writes exactly out_degree g i entries and the offsets are their prefix sums *)
let of_digraph g =
  let n = Digraph.vertex_count g in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + Digraph.out_degree g i
  done;
  let cols = Buf.int_create row_ptr.(n) in
  let out = ref 0 in
  for i = 0 to n - 1 do
    (* [iter_out] visits ascending, so every row lands sorted. *)
    Digraph.iter_out g i (fun j ->
        Buf.int_set cols !out j;
        incr out)
  done;
  Spgraph.make ~n ~row_ptr ~cols

let to_digraph t =
  let n = Spgraph.vertex_count t in
  let g = Digraph.create n in
  for i = 0 to n - 1 do
    Spgraph.iter_row t i (fun j -> Digraph.add_edge g i j)
  done;
  g

let degree_sums t =
  Spgraph.check_t t;
  let n = Spgraph.vertex_count t in
  let sums = Array.make n 0 in
  for i = 0 to n - 1 do
    sums.(i) <- sums.(i) + Spgraph.degree t i;
    Spgraph.iter_row t i (fun j -> sums.(j) <- sums.(j) + 1)
  done;
  sums

(* Build a CSR from the sampler's forward-pair stream: [fwd_count.(i)]
   pairs (i, j) per row with the j's concatenated row-major in [js]
   (ascending within a row, rows in order — the order the geometric-skip
   sampler emits).  Counting sort over both endpoints; the arrival order
   makes every output row come out ascending (row i first receives its
   smaller neighbours from pairs (u, i) with u increasing, then its
   larger ones from pairs (i, v) with v increasing), so no per-row sort
   is ever needed.  The stream lives on a [Buf.ints] and the only plain
   arrays are O(n).

   This direct variant scatters every backward entry (j, i) straight to
   its final slot — one random write into [cols] per pair.  Fine while
   [cols] fits in cache; at the 10^6-vertex rung [cols] is ~8 GB and
   every scatter is a TLB-and-DRAM round trip, which is what
   [csr_of_stream_bucketed] below fixes.  Kept as the reference
   implementation (and the builder for the frozen [sample_gnp_scalar]
   baseline): both builders emit byte-identical CSRs. *)
let csr_of_stream_direct ~n ~m fwd_count js =
  if m < 0 || m > Buf.int_length js then
    invalid_arg "Sparse: pair stream shorter than m";
  if Array.length fwd_count <> n then
    invalid_arg "Sparse: per-row count length mismatch";
  let deg = Array.make (max 1 n) 0 in
  let e = ref 0 in
  for i = 0 to n - 1 do
    deg.(i) <- deg.(i) + fwd_count.(i);
    for _ = 1 to fwd_count.(i) do
      let j = Buf.int_get js !e in
      deg.(j) <- deg.(j) + 1;
      incr e
    done
  done;
  if !e <> m then invalid_arg "Sparse: per-row counts do not sum to m";
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + deg.(i)
  done;
  (* Uninitialized is safe: the cursor prefix sums partition the buffer
     and the loop writes exactly [deg.(i)] entries into row i. *)
  let cols = Buf.int_create_uninit (2 * m) in
  let cursor = Array.init n (fun i -> row_ptr.(i)) in
  let e = ref 0 in
  for i = 0 to n - 1 do
    for _ = 1 to fwd_count.(i) do
      let j = Buf.int_get js !e in
      Buf.int_set cols cursor.(i) j;
      cursor.(i) <- cursor.(i) + 1;
      Buf.int_set cols cursor.(j) i;
      cursor.(j) <- cursor.(j) + 1;
      incr e
    done
  done;
  Spgraph.make ~n ~row_ptr ~cols

(* Cache-aware counting sort for the same stream: partition the backward
   entries (j, i) into row-range buckets first (wide sequential writes),
   then scatter each bucket into [cols] while its target region and
   cursor slice are cache-resident.  Each pair is packed into one native
   int ([j lsl 31 lor i], which is why the caller guarantees
   n < 2^31), so the partition costs one extra O(m) buffer and every
   pass is either sequential or confined to ~2^18-entry windows.  At
   n = 10^6 / m = 5 x 10^8 this takes the build from ~43 ns/pair
   (DRAM-latency bound) to memory-bandwidth bound.  Output is
   byte-identical to [csr_of_stream_direct]: bucketing by row range
   preserves the stream order within each bucket, so every row still
   receives its entries in ascending order. *)
let csr_of_stream_bucketed ~n ~m fwd_count js =
  if m < 0 || m > Buf.int_length js then
    invalid_arg "Sparse: pair stream shorter than m";
  if Array.length fwd_count <> n then
    invalid_arg "Sparse: per-row count length mismatch";
  (* Bucket width: the smallest power-of-two row range that keeps the
     bucket count within [target] — a function of n and m only. *)
  let target = max 1 (min 1024 (m / (1 lsl 18))) in
  let shift = ref 0 in
  while ((n - 1) lsr !shift) + 1 > target do incr shift done;
  let shift = !shift in
  let nb = ((n - 1) lsr shift) + 1 in
  let bcount = Array.make nb 0 in
  let e = ref 0 in
  for i = 0 to n - 1 do
    for _ = 1 to fwd_count.(i) do
      let j = Buf.int_get js !e in
      bcount.(j lsr shift) <- bcount.(j lsr shift) + 1;
      incr e
    done
  done;
  if !e <> m then invalid_arg "Sparse: per-row counts do not sum to m";
  let bptr = Array.make (nb + 1) 0 in
  for b = 0 to nb - 1 do
    bptr.(b + 1) <- bptr.(b) + bcount.(b)
  done;
  (* Partition pass: pack (j, i) and append to j's bucket, accumulating
     backward degrees on the way (one pass over the stream instead of a
     later re-read of [packed]).  Stream order is preserved inside each
     bucket. *)
  let packed = Buf.int_create_uninit (max 1 m) in
  let bcur = Array.init nb (fun b -> bptr.(b)) in
  let deg = Array.make (max 1 n) 0 in
  Array.blit fwd_count 0 deg 0 n;
  let e = ref 0 in
  for i = 0 to n - 1 do
    for _ = 1 to fwd_count.(i) do
      let j = Buf.int_get js !e in
      let b = j lsr shift in
      Buf.int_set packed bcur.(b) ((j lsl 31) lor i);
      bcur.(b) <- bcur.(b) + 1;
      deg.(j) <- deg.(j) + 1;
      incr e
    done
  done;
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + deg.(i)
  done;
  (* Uninitialized is safe: forward entries fill the tail
     [fwd_count.(i)] slots of each row, backward entries fill the head
     [deg.(i) - fwd_count.(i)] slots through the cursors, and the two
     fills write exactly [deg.(i)] entries per row. *)
  let cols = Buf.int_create_uninit (2 * m) in
  (* Forward fill: row i's larger neighbours, straight from the stream —
     sequential read, near-sequential write. *)
  let e = ref 0 in
  for i = 0 to n - 1 do
    let base = row_ptr.(i + 1) - fwd_count.(i) in
    for d = 0 to fwd_count.(i) - 1 do
      Buf.int_set cols (base + d) (Buf.int_get js (!e + d))
    done;
    e := !e + fwd_count.(i)
  done;
  (* Backward fill, bucket by bucket: target rows and cursors stay
     cache-resident for the whole bucket. *)
  let cursor = Array.init (max 1 n) (fun i -> row_ptr.(i)) in
  let mask31 = (1 lsl 31) - 1 in
  for e = 0 to m - 1 do
    let w = Buf.int_get packed e in
    let j = w lsr 31 in
    Buf.int_set cols cursor.(j) (w land mask31);
    cursor.(j) <- cursor.(j) + 1
  done;
  Spgraph.make ~n ~row_ptr ~cols

(* Under ~2^20 pairs both the scatter target and the cursors fit in
   cache and the direct scatter is already bandwidth-bound; above it the
   bucketed two-phase sort wins.  n < 2^31 is the packing limit. *)
let csr_of_stream ~n ~m fwd_count js =
  if m < 1 lsl 20 || n >= 1 lsl 31 then csr_of_stream_direct ~n ~m fwd_count js
  else csr_of_stream_bucketed ~n ~m fwd_count js

(* PR 9's sampler, frozen: the scalar draw-per-skip decode over the
   direct scatter build.  [sample_gnp] below emits the identical graph
   from the identical draws (test_sparse pins them equal); this version
   stays as the reference implementation, the in-run equality oracle and
   the `bench prng` baseline row. *)
let sample_gnp_scalar g ~n ~p =
  if n < 0 then invalid_arg "Sparse.sample_gnp: n >= 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Sparse.sample_gnp: p in [0,1]";
  let total = n * (n - 1) / 2 in
  let mean = p *. float_of_int total in
  let cap =
    ref
      (min (max 1 total)
         (64 + int_of_float (mean +. (6.0 *. Float.sqrt (mean +. 1.0)))))
  in
  let js = ref (Buf.int_create_uninit !cap) in
  let fwd_count = Array.make (max 1 n) 0 in
  let m = ref 0 in
  let push i j =
    if !m = !cap then begin
      let cap' = min (max 1 total) (2 * !cap) in
      let js' = Buf.int_create_uninit cap' in
      Bigarray.Array1.blit !js (Bigarray.Array1.sub js' 0 !m);
      js := js';
      cap := cap'
    end;
    Buf.int_set !js !m j;
    fwd_count.(i) <- fwd_count.(i) + 1;
    incr m
  in
  if p >= 1.0 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        push i j
      done
    done
  else if p > 0.0 && total > 0 then begin
    let log1mp = Float.log (1.0 -. p) in
    let row = ref 0 in
    let row_start = ref 0 in
    let idx = ref (-1) in
    let continue = ref true in
    while !continue do
      let u = Prng.float g in
      let skip = Float.log (1.0 -. u) /. log1mp in
      (* [skip] is finite and >= 0; cap before truncating so the addition
         below cannot overflow when p is tiny and u is close to 1. *)
      let skip = int_of_float (Float.min skip (float_of_int total)) in
      idx := !idx + 1 + skip;
      if !idx >= total then continue := false
      else begin
        while !idx >= !row_start + (n - 1 - !row) do
          row_start := !row_start + (n - 1 - !row);
          incr row
        done;
        let i = !row in
        let j = i + 1 + (!idx - !row_start) in
        push i j
      end
    done
  end;
  csr_of_stream_direct ~n ~m:!m fwd_count !js

(* CSR twin of [Gnp.sample_fast]: the identical geometric-skip decode —
   same [Prng.float] draws in the same order, same cap, same row-major
   pair walk — but the skips are decoded in blocks by
   [Prng.Block.fill_geometric] (one fused pass, no per-draw call or
   box) and the decoded pairs are appended to a pair stream instead of
   written into dense rows, so a G(n, p) graph costs O(n + m) memory
   end to end.  Block boundaries never leak into the stream: the final
   block is speculatively over-filled, then rewound ([Block.save] /
   [Block.restore]) and replayed for exactly the draws the scalar
   decode would have consumed, so the generator's end state matches the
   scalar path draw for draw.  test/test_sparse.ml pins
   [sample_gnp] == [of_digraph (Gnp.sample_fast ...)] ==
   [sample_gnp_scalar] on shared seeds.

   [?stream_cap] overrides the initial pair-stream capacity (normally
   the binomial mean + 6 sigma) so tests can force the geometric-growth
   path; the sampled graph is identical for any value. *)
let sample_gnp ?stream_cap g ~n ~p =
  if n < 0 then invalid_arg "Sparse.sample_gnp: n >= 0";
  if p < 0.0 || p > 1.0 then invalid_arg "Sparse.sample_gnp: p in [0,1]";
  let total = n * (n - 1) / 2 in
  let mean = p *. float_of_int total in
  let cap0 =
    match stream_cap with
    | Some c -> min (max 1 total) (max 1 c)
    | None ->
        min (max 1 total)
          (64 + int_of_float (mean +. (6.0 *. Float.sqrt (mean +. 1.0))))
  in
  let js = ref (Buf.int_create_uninit cap0) in
  let cap = ref cap0 in
  let fwd_count = Array.make (max 1 n) 0 in
  let m = ref 0 in
  let grow () =
    (* Geometric growth, clamped to the pair count: [m] can never reach
       [total] at a push (there are at most [total] pushes), so the
       clamped doubling always yields cap' > m. *)
    let cap' = min (max 1 total) (max (2 * !cap) (!m + 1)) in
    let js' = Buf.int_create_uninit cap' in
    if !m > 0 then
      Bigarray.Array1.blit
        (Bigarray.Array1.sub !js 0 !m)
        (Bigarray.Array1.sub js' 0 !m);
    js := js';
    cap := cap'
  in
  if p >= 1.0 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if !m = !cap then grow ();
        Buf.int_set !js !m j;
        fwd_count.(i) <- fwd_count.(i) + 1;
        incr m
      done
    done
  else if p > 0.0 && total > 0 then begin
    let log1mp = Float.log (1.0 -. p) in
    let capf = float_of_int total in
    let block = max 64 (min 65536 (int_of_float mean + 64)) in
    let skips = Buf.int_create_uninit block in
    let row = ref 0 in
    let row_start = ref 0 in
    let idx = ref (-1) in
    let continue = ref true in
    while !continue do
      let snap = Prng.Block.save g in
      Prng.Block.fill_geometric g ~log1mp ~cap:capf skips ~pos:0 ~len:block;
      let t = ref 0 in
      while !continue && !t < block do
        let skip = Buf.int_get skips !t in
        incr t;
        idx := !idx + 1 + skip;
        if !idx >= total then begin
          continue := false;
          (* Rewind the speculative block, replay the consumed prefix:
             the stream position ends exactly where the scalar decode's
             would. *)
          Prng.Block.restore g snap;
          Prng.Block.fill_geometric g ~log1mp ~cap:capf skips ~pos:0 ~len:!t
        end
        else begin
          while !idx >= !row_start + (n - 1 - !row) do
            row_start := !row_start + (n - 1 - !row);
            incr row
          done;
          if !m = !cap then grow ();
          Buf.int_set !js !m (!row + 1 + (!idx - !row_start));
          fwd_count.(!row) <- fwd_count.(!row) + 1;
          incr m
        end
      done
    done
  end;
  csr_of_stream ~n ~m:!m fwd_count !js

let sample_rand g ~n ~p = sample_gnp g ~n ~p

(* ---------- Word-level skip decode for the sharded sampler ---------- *)

(* The sharded sampler's skips are decoded from raw 53-bit uniforms by
   integer threshold inversion instead of the scalar path's
   [Float.log]: thresholds thr.(k) = round((1 - (1-p)^k) * 2^53) tile
   [0, 2^53) so that a uniform w lands in [thr.(k), thr.(k+1)) exactly
   when the geometric skip is k.  A 2^16-entry guide table points each
   u-window at its starting k, so a decode is one guide load plus a
   short threshold walk (binary search for the rare crowded windows) —
   a few ns, entirely in integers, no libm in the hot loop.  The
   distribution matches the log decode to within one part in 2^53 (the
   same rounding granularity the float decode carries); the exact
   per-bit stream is different, which is why the sharded sampler is a
   separate, documented stream rather than a drop-in for [sample_gnp].

   If p is so small that (1-p)^k is still > 2^-54 at the table cap, the
   last threshold is a tail sentinel: a uniform landing beyond it adds
   [kmax] to the skip and decodes another word (geometric
   memorylessness), so arbitrarily small p stays exact. *)

let skip_gbits = 16
let two53f = 9007199254740992.0
let two53 = 1 lsl 53

type skip_table = { thr : Buf.ints; guide : Buf.ints; kmax : int }

let make_skip_table p =
  let q = 1.0 -. p in
  let capk = 1 lsl 17 in
  (* Sizing pass: find the first k whose boundary rounds to 2^53. *)
  let kmax = ref capk in
  (try
     let qk = ref 1.0 in
     for k = 1 to capk do
       qk := !qk *. q;
       if ((1.0 -. !qk) *. two53f) +. 0.5 >= two53f then begin
         kmax := k;
         raise Exit
       end
     done
   with Exit -> ());
  let kmax = !kmax in
  let thr = Buf.int_create (kmax + 1) in
  Buf.int_set thr 0 0;
  let qk = ref 1.0 in
  let prev = ref 0 in
  for k = 1 to kmax do
    qk := !qk *. q;
    let b = int_of_float (Float.round ((1.0 -. !qk) *. two53f)) in
    let b = min two53 (max !prev b) in
    Buf.int_set thr k b;
    prev := b
  done;
  let gsize = 1 lsl skip_gbits in
  let guide = Buf.int_create gsize in
  let k = ref 0 in
  for h = 0 to gsize - 1 do
    let base = h lsl (53 - skip_gbits) in
    while !k < kmax - 1 && Buf.int_get thr (!k + 1) <= base do
      incr k
    done;
    Buf.int_set guide h !k
  done;
  { thr; guide; kmax }

(* Largest k with thr.(k) <= w; k = kmax means the tail sentinel. *)
(* bcc-lint: allow kern/unsafe-index — callers pass w < 2^53 (the top 53 bits of a draw), so the guide index w lsr 37 < 2^16 = its length; every thr access is at an index <= kmax with length kmax + 1 (make_skip_table builds both) *)
let[@inline] decode_skip tbl w =
  let kmax = tbl.kmax in
  let k = ref (Buf.int_get tbl.guide (w lsr (53 - skip_gbits))) in
  let steps = ref 0 in
  while !steps < 6 && !k < kmax && Buf.int_get tbl.thr (!k + 1) <= w do
    incr k;
    incr steps
  done;
  if !k < kmax && Buf.int_get tbl.thr (!k + 1) <= w then begin
    (* Crowded window: binary search the remaining thresholds. *)
    let lo = ref (!k + 1) and hi = ref kmax in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) lsr 1 in
      if Buf.int_get tbl.thr mid <= w then lo := mid else hi := mid - 1
    done;
    k := !lo
  end;
  !k

(* Row r of the upper-triangle pair walk starts at pair index
   S_r = r(n-1) - r(r-1)/2; find the largest r with S_r <= idx by a
   float sqrt guess plus an exact integer fixup. *)
let row_of_pair_index n idx =
  let s_of r = (r * (n - 1)) - (r * (r - 1) / 2) in
  let nf = float_of_int n in
  let disc = ((nf -. 0.5) *. (nf -. 0.5)) -. (2.0 *. float_of_int idx) in
  let guess = int_of_float (nf -. 0.5 -. Float.sqrt (Float.max 0.0 disc)) in
  let r = ref (max 0 (min (n - 2) guess)) in
  while !r > 0 && s_of !r > idx do
    decr r
  done;
  while !r < n - 2 && s_of (!r + 1) <= idx do
    incr r
  done;
  !r

(* One shard's slice [lo, hi) of the pair-index walk, on a dedicated
   child stream: returns (first row, per-row counts over the shard's row
   span, pair stream, pair count). *)
let decode_shard ~n ~mean_per_pair tbl child ~lo ~hi =
  let row0 = row_of_pair_index n lo in
  let s_of r = (r * (n - 1)) - (r * (r - 1) / 2) in
  let row_end = row_of_pair_index n (hi - 1) in
  let span = row_end - row0 + 1 in
  let counts = Array.make span 0 in
  let mean = mean_per_pair *. float_of_int (hi - lo) in
  let cap0 =
    min (max 1 (hi - lo))
      (64 + int_of_float (mean +. (6.0 *. Float.sqrt (mean +. 1.0))))
  in
  let js = ref (Buf.int_create_uninit cap0) in
  let cap = ref cap0 in
  let m = ref 0 in
  let grow () =
    let cap' = min (max 1 (hi - lo)) (max (2 * !cap) (!m + 1)) in
    let js' = Buf.int_create_uninit cap' in
    if !m > 0 then
      Bigarray.Array1.blit
        (Bigarray.Array1.sub !js 0 !m)
        (Bigarray.Array1.sub js' 0 !m);
    js := js';
    cap := cap'
  in
  let words_cap = 8192 in
  let words = Buf.i64_create words_cap in
  let avail = ref 0 in
  let wcur = ref 0 in
  let kmax = tbl.kmax in
  let row = ref row0 in
  let row_start = ref (s_of row0) in
  let idx = ref (lo - 1) in
  let continue = ref true in
  while !continue do
    (* The child stream is dedicated to this shard, so over-fetching a
       block of words needs no rewind — leftovers are simply dropped. *)
    if !wcur >= !avail then begin
      Prng.Block.fill_bits64 child words ~pos:0 ~len:words_cap;
      avail := words_cap;
      wcur := 0
    end;
    let w =
      Int64.to_int (Int64.shift_right_logical (Buf.i64_get words !wcur) 11)
    in
    incr wcur;
    let k = ref (decode_skip tbl w) in
    let skip = ref 0 in
    while !k = kmax && !idx + 1 + !skip + kmax < hi do
      (* Tail sentinel: add kmax and decode the excess from a fresh
         word, until the skip either resolves or walks past the shard. *)
      skip := !skip + kmax;
      if !wcur >= !avail then begin
        Prng.Block.fill_bits64 child words ~pos:0 ~len:words_cap;
        avail := words_cap;
        wcur := 0
      end;
      let w =
        Int64.to_int (Int64.shift_right_logical (Buf.i64_get words !wcur) 11)
      in
      incr wcur;
      k := decode_skip tbl w
    done;
    let skip = !skip + !k in
    idx := !idx + 1 + skip;
    if !idx >= hi then continue := false
    else begin
      while !idx >= !row_start + (n - 1 - !row) do
        row_start := !row_start + (n - 1 - !row);
        incr row
      done;
      if !m = !cap then grow ();
      Buf.int_set !js !m (!row + 1 + (!idx - !row_start));
      counts.(!row - row0) <- counts.(!row - row0) + 1;
      incr m
    end
  done;
  (row0, counts, !js, !m)

(* CSR straight from the per-shard pair streams, taken in shard order —
   the concatenation in shard order {e is} the global row-major stream,
   so this is [csr_of_stream_bucketed] with the single stream buffer
   replaced by a walk over the shard buffers: the merged copy of the
   stream (4 GB at the 10^6 rung, and this machine pays dearly for every
   freshly faulted page) never exists.  Small totals just merge and use
   the direct build. *)
let csr_of_shards ~n results =
  let fwd_count = Array.make (max 1 n) 0 in
  Array.iter
    (fun (row0, counts, _, _) ->
      Array.iteri
        (fun r c -> fwd_count.(row0 + r) <- fwd_count.(row0 + r) + c)
        counts)
    results;
  let m = Array.fold_left (fun acc (_, _, _, ms) -> acc + ms) 0 results in
  if m < 1 lsl 20 || n >= 1 lsl 31 then begin
    let js = Buf.int_create_uninit (max 1 m) in
    let off = ref 0 in
    Array.iter
      (fun (_, _, js_s, ms) ->
        if ms > 0 then
          Bigarray.Array1.blit
            (Bigarray.Array1.sub js_s 0 ms)
            (Bigarray.Array1.sub js !off ms);
        off := !off + ms)
      results;
    csr_of_stream_direct ~n ~m fwd_count js
  end
  else begin
    let target = max 1 (min 1024 (m / (1 lsl 18))) in
    let shift = ref 0 in
    while ((n - 1) lsr !shift) + 1 > target do incr shift done;
    let shift = !shift in
    let nb = ((n - 1) lsr shift) + 1 in
    let bcount = Array.make nb 0 in
    Array.iter
      (fun (_, _, js_s, ms) ->
        for e = 0 to ms - 1 do
          (* bcc-lint: allow kern/unsafe-index — e < ms, the shard's emitted count, which decode_shard bounds by Buf.int_length js_s *)
          let j = Buf.int_get js_s e in
          bcount.(j lsr shift) <- bcount.(j lsr shift) + 1
        done)
      results;
    let bptr = Array.make (nb + 1) 0 in
    for b = 0 to nb - 1 do
      bptr.(b + 1) <- bptr.(b) + bcount.(b)
    done;
    let packed = Buf.int_create_uninit (max 1 m) in
    let bcur = Array.init nb (fun b -> bptr.(b)) in
    let deg = Array.make (max 1 n) 0 in
    Array.blit fwd_count 0 deg 0 n;
    Array.iter
      (fun (row0, counts, js_s, _) ->
        let e = ref 0 in
        Array.iteri
          (fun r c ->
            let i = row0 + r in
            for _ = 1 to c do
              let j = Buf.int_get js_s !e in
              let b = j lsr shift in
              Buf.int_set packed bcur.(b) ((j lsl 31) lor i);
              bcur.(b) <- bcur.(b) + 1;
              deg.(j) <- deg.(j) + 1;
              incr e
            done)
          counts)
      results;
    let row_ptr = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      row_ptr.(i + 1) <- row_ptr.(i) + deg.(i)
    done;
    (* Uninitialized is safe: the forward cursors fill the tail
       [fwd_count.(i)] slots of row i, the backward cursors fill the
       head, and together they write exactly [deg.(i)] entries per
       row. *)
    let cols = Buf.int_create_uninit (2 * m) in
    (* Forward fill through per-row cursors: a row whose forward walk
       straddles a shard boundary receives the earlier shard's entries
       first, preserving ascending order. *)
    let fcur = Array.init n (fun i -> row_ptr.(i + 1) - fwd_count.(i)) in
    Array.iter
      (fun (row0, counts, js_s, _) ->
        let e = ref 0 in
        Array.iteri
          (fun r c ->
            let i = row0 + r in
            for _ = 1 to c do
              Buf.int_set cols fcur.(i) (Buf.int_get js_s !e);
              fcur.(i) <- fcur.(i) + 1;
              incr e
            done)
          counts)
      results;
    let cursor = Array.init n (fun i -> row_ptr.(i)) in
    let mask31 = (1 lsl 31) - 1 in
    for e = 0 to m - 1 do
      let w = Buf.int_get packed e in
      let j = w lsr 31 in
      Buf.int_set cols cursor.(j) (w land mask31);
      cursor.(j) <- cursor.(j) + 1
    done;
    Spgraph.make ~n ~row_ptr ~cols
  end

(* Fixed seed-space salt: the sharded sampler derives its shard streams
   from [split (split g shard_salt) s], leaving the parent stream
   position untouched and keeping the per-trial child indices
   (Par.map_trials splits 0, 1, 2, ...) collision-free. *)
let shard_salt = 0x5eed

let shard_count total = if total < 65536 then 1 else 64

(* Sharded G(n, p): the pair-index walk is cut into [shard_count]
   equal slices — a function of n alone, never of the pool size — each
   decoded on its own [Prng.split] child stream by the word-level skip
   decode above, in parallel on the [Par] pool.  The per-shard pair
   streams are concatenated in shard order (the global walk is ascending
   across slice boundaries) and counting-sorted into CSR, so the result
   is byte-identical at any [BCC_DOMAINS].  This is a new, documented
   stream: same-seed results differ from [sample_gnp] by construction
   (see docs/PERFORMANCE.md "Batched draws"). *)
let sample_gnp_sharded g ~n ~p =
  if n < 0 then invalid_arg "Sparse.sample_gnp_sharded: n >= 0";
  if n >= 1 lsl 30 then invalid_arg "Sparse.sample_gnp_sharded: n < 2^30";
  if p < 0.0 || p > 1.0 then
    invalid_arg "Sparse.sample_gnp_sharded: p in [0,1]";
  let total = n * (n - 1) / 2 in
  let fwd_count = Array.make (max 1 n) 0 in
  if p >= 1.0 then begin
    (* Deterministic complete graph: no draws on any stream. *)
    let js = Buf.int_create_uninit (max 1 total) in
    let m = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Buf.int_set js !m j;
        fwd_count.(i) <- fwd_count.(i) + 1;
        incr m
      done
    done;
    csr_of_stream ~n ~m:!m fwd_count js
  end
  else if p <= 0.0 || total = 0 then
    csr_of_stream ~n ~m:0 fwd_count (Buf.int_create_uninit 1)
  else begin
    let tbl = make_skip_table p in
    let shards = shard_count total in
    let base = total / shards in
    let rem = total mod shards in
    let lo_of s = (base * s) + min s rem in
    let root = Prng.split g shard_salt in
    let results =
      Par.map_array
        (fun s ->
          let child = Prng.split root s in
          let lo = lo_of s and hi = lo_of (s + 1) in
          if lo >= hi then (0, [||], Buf.int_create_uninit 1, 0)
          else decode_shard ~n ~mean_per_pair:p tbl child ~lo ~hi)
        (Array.init shards Fun.id)
    in
    csr_of_shards ~n results
  end

(* Union the rows of [t] with the clique on [cs]: one count pass, one
   sorted-merge fill pass — existing edges inside the clique dedupe
   against the merge, exactly like [Planted.sample_planted_at]'s
   idempotent [add_edge] calls on the dense side. *)
let overlay_clique t cs =
  Spgraph.check_t t;
  let n = Spgraph.vertex_count t in
  let kc = Array.length cs in
  if kc = 0 then t
  else begin
    let in_c = Array.make n false in
    Array.iter
      (fun v ->
        if v < 0 || v >= n then invalid_arg "Sparse: clique vertex out of range";
        in_c.(v) <- true)
      cs;
    let row_ptr = t.Spgraph.row_ptr and cols = t.Spgraph.cols in
    (* |row i ∪ (cs \ {i})| *)
    let union_size i =
      let a = ref row_ptr.(i) and ae = row_ptr.(i + 1) in
      let b = ref 0 in
      let count = ref 0 in
      while !a < ae && !b < kc do
        let x = Buf.int_get cols !a and y = Array.unsafe_get cs !b in
        if y = i then incr b
        else if x < y then begin
          incr count;
          incr a
        end
        else if y < x then begin
          incr count;
          incr b
        end
        else begin
          incr count;
          incr a;
          incr b
        end
      done;
      count := !count + (ae - !a);
      while !b < kc do
        if Array.unsafe_get cs !b <> i then incr count;
        incr b
      done;
      !count
    in
    let row_ptr' = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      let d =
        if in_c.(i) then union_size i else row_ptr.(i + 1) - row_ptr.(i)
      in
      row_ptr'.(i + 1) <- row_ptr'.(i) + d
    done;
    (* Uninitialized is safe: [emit] writes every slot in order — the
       per-row union sizes sum to exactly [row_ptr'.(n)]. *)
    let cols' = Buf.int_create_uninit row_ptr'.(n) in
    let out = ref 0 in
    let emit j =
      Buf.int_set cols' !out j;
      incr out
    in
    for i = 0 to n - 1 do
      if in_c.(i) then begin
        let a = ref row_ptr.(i) and ae = row_ptr.(i + 1) in
        let b = ref 0 in
        while !a < ae && !b < kc do
          let x = Buf.int_get cols !a and y = Array.unsafe_get cs !b in
          if y = i then incr b
          else if x < y then begin
            emit x;
            incr a
          end
          else if y < x then begin
            emit y;
            incr b
          end
          else begin
            emit x;
            incr a;
            incr b
          end
        done;
        while !a < ae do
          emit (Buf.int_get cols !a);
          incr a
        done;
        while !b < kc do
          let y = Array.unsafe_get cs !b in
          if y <> i then emit y;
          incr b
        done
      end
      else
        for idx = row_ptr.(i) to row_ptr.(i + 1) - 1 do
          emit (Buf.int_get cols idx)
        done
    done;
    Spgraph.make ~n ~row_ptr:row_ptr' ~cols:cols'
  end

(* Sparse-regime planted instance: the clique vertex set is drawn first
   ([Prng.subset]) and the G(n, p) stream second — [Planted.sample_planted]'s
   draw order, so dense and sparse planted instances on a shared seed use
   the PRNG identically. *)
let sample_planted g ~n ~p ~k =
  let c = Prng.subset g ~n ~k in
  let base = sample_gnp g ~n ~p in
  let cs = Array.of_list (List.sort_uniq Int.compare c) in
  (overlay_clique base cs, c)

(* Sharded twin: subset from the parent stream first (same position as
   [sample_planted]), then the sharded G(n, p) — whose shard children
   never touch the parent stream, so after this call the parent sits
   exactly one [subset] past where it started. *)
let sample_planted_sharded g ~n ~p ~k =
  let c = Prng.subset g ~n ~k in
  let base = sample_gnp_sharded g ~n ~p in
  let cs = Array.of_list (List.sort_uniq Int.compare c) in
  (overlay_clique base cs, c)
