(** Triangle counting — the first problem Section 9 nominates for the
    paper's technique ("counting triangles (or K_4s) in random graphs").

    On the bidirectional core of a directed graph: exact counts via
    bitset intersection, the closed-form expectation/variance under
    [A_rand], the planted-clique excess, and the K_4 count.  Everything a
    triangle-based distinguisher needs — and the expected-value algebra
    showing {e why} it fails below [k ~ n^{1/2}] (the excess
    [C(k,3) / 8^{-1} n^{3/2}]-ish z-score crosses 1 only near
    [k = Theta(sqrt n)]). *)

val count : Digraph.t -> int
(** Exact number of triangles in the bidirectional core. *)

val count_k4 : Digraph.t -> int
(** Exact number of bidirectional K_4s. *)

(** The same counts over any {!Graph_backend.S}: [Of (Graph_backend.Dense)]
    is the packed-kernel pipeline of {!count}, [Of
    (Graph_backend.Sparse_backend)] the sharded sorted-merge kernels on
    the CSR. *)
module Of (B : Graph_backend.S) : sig
  val count : B.t -> int
  val count_k4 : B.t -> int
end

val expected_random : int -> float
(** [E[triangles]] under [A_rand^n]: [C(n,3) * (1/64)] (each of the three
    undirected edges needs both directions, probability 1/4 each). *)

val stddev_random : int -> float
(** Standard deviation of the triangle count under [A_rand^n], from the
    exact covariance expansion over shared-edge pairs. *)

val planted_excess : n:int -> k:int -> float
(** Expected extra triangles from planting a [k]-clique:
    [C(k,3) * (1 − 1/64)] plus mixed terms with one or two clique edges. *)

val zscore : n:int -> k:int -> float
(** [planted_excess / stddev_random]: the detectability of the triangle
    statistic.  Crosses 1 around [k = Theta(sqrt n)], in line with the
    paper's conjecture that the hard regime extends to [n^{1/2 - eps}]. *)
