type params = { universe : int; seed : int }

type t = {
  p : params;
  nlevels : int;
  xor_ids : int array;  (** per level, xor of (coordinate + 1) *)
  xor_chks : int array;  (** per level, xor of 32-bit checksums *)
}

let int_width v =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x lsr 1) in
  max 1 (go 0 v)

let levels p = int_width p.universe + 2

(* splitmix64-style mixing of (seed, coordinate). *)
let hash64 seed i =
  let z = Int64.add (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L) (Int64.of_int i) in
  let z = Int64.add (Int64.mul z 0x9e3779b97f4a7c15L) 0x243f6a8885a308d3L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let trailing_zeros v =
  if v = 0L then 64
  else begin
    let c = ref 0 and x = ref v in
    while Int64.logand !x 1L = 0L do
      incr c;
      x := Int64.shift_right_logical !x 1
    done;
    !c
  end

(* Coordinate i participates in levels 0 .. min(tz(h(i)), nlevels - 1). *)
let top_level p i = trailing_zeros (hash64 p.seed i)

let checksum p i = Int64.to_int (Int64.logand (hash64 (p.seed + 7919) i) 0xffffffffL)

let create p =
  if p.universe < 1 then invalid_arg "Agm_sketch.create: empty universe";
  let nlevels = levels p in
  { p; nlevels; xor_ids = Array.make nlevels 0; xor_chks = Array.make nlevels 0 }

let params_of s = s.p

let add s i =
  if i < 0 || i >= s.p.universe then invalid_arg "Agm_sketch.add: coordinate out of range";
  let top = min (top_level s.p i) (s.nlevels - 1) in
  for l = 0 to top do
    s.xor_ids.(l) <- s.xor_ids.(l) lxor (i + 1);
    s.xor_chks.(l) <- s.xor_chks.(l) lxor checksum s.p i
  done

let xor_inplace dst src =
  if dst.p <> src.p then invalid_arg "Agm_sketch.xor_inplace: params mismatch";
  for l = 0 to dst.nlevels - 1 do
    dst.xor_ids.(l) <- dst.xor_ids.(l) lxor src.xor_ids.(l);
    dst.xor_chks.(l) <- dst.xor_chks.(l) lxor src.xor_chks.(l)
  done

let copy s = { s with xor_ids = Array.copy s.xor_ids; xor_chks = Array.copy s.xor_chks }

let recover s =
  let result = ref None in
  let l = ref 0 in
  while !result = None && !l < s.nlevels do
    let id = s.xor_ids.(!l) in
    if id <> 0 then begin
      let candidate = id - 1 in
      if
        candidate < s.p.universe
        && min (top_level s.p candidate) (s.nlevels - 1) >= !l
        && s.xor_chks.(!l) = checksum s.p candidate
      then result := Some candidate
    end;
    incr l
  done;
  !result

let is_zero s =
  Array.for_all (fun v -> v = 0) s.xor_ids && Array.for_all (fun v -> v = 0) s.xor_chks

let id_bits p = int_width (p.universe + 1)

let bit_size p = levels p * (id_bits p + 32)

let to_bitvec s =
  let w = id_bits s.p in
  let stride = w + 32 in
  let bits = Bitvec.create (s.nlevels * stride) in
  for l = 0 to s.nlevels - 1 do
    for b = 0 to w - 1 do
      if (s.xor_ids.(l) lsr b) land 1 = 1 then Bitvec.set bits ((l * stride) + b) true
    done;
    for b = 0 to 31 do
      if (s.xor_chks.(l) lsr b) land 1 = 1 then
        Bitvec.set bits ((l * stride) + w + b) true
    done
  done;
  bits

let of_bitvec p bits =
  let s = create p in
  let w = id_bits p in
  let stride = w + 32 in
  if Bitvec.length bits <> s.nlevels * stride then
    invalid_arg "Agm_sketch.of_bitvec: wrong length";
  for l = 0 to s.nlevels - 1 do
    let id = ref 0 and chk = ref 0 in
    for b = 0 to w - 1 do
      if Bitvec.get bits ((l * stride) + b) then id := !id lor (1 lsl b)
    done;
    for b = 0 to 31 do
      if Bitvec.get bits ((l * stride) + w + b) then chk := !chk lor (1 lsl b)
    done;
    s.xor_ids.(l) <- !id;
    s.xor_chks.(l) <- !chk
  done;
  s
