(** Hamiltonian cycles in random graphs — Section 9's "planted Hamiltonian
    cycle" target.

    The probability that [G(n, p)] is Hamiltonian jumps from 0 to 1 around
    [p = (ln n + ln ln n) / n]; Section 9 suggests tuning [p] so the
    probability is a constant and asking whether a low-round protocol can
    decide it.  This module provides the substrate: the Angluin-Valiant
    rotation-extension heuristic (finds Hamilton cycles w.h.p. above the
    threshold in polynomial time), a planted-cycle sampler, and the
    threshold formula. *)

val hamiltonicity_threshold : int -> float
(** [(ln n + ln ln n) / n]. *)

val sample_planted_cycle : Prng.t -> n:int -> p:float -> Digraph.t * int array
(** A random Hamiltonian cycle (as a vertex permutation) is planted as
    bidirectional edges on top of a [Gnp.sample] backdrop of density
    [p]. *)

val find_cycle : Prng.t -> Digraph.t -> max_steps:int -> int array option
(** Rotation-extension search for a Hamiltonian cycle on the
    bidirectional core; [None] after [max_steps] rotations without
    success (which, above the threshold, means the graph is very likely
    non-Hamiltonian or the budget too small). *)

val is_hamiltonian_cycle : Digraph.t -> int array -> bool
(** Whether the permutation is a cycle of bidirectional edges visiting
    every vertex once. *)
