(* One packed transpose + word-AND (Bcc_kern.Graph) instead of an O(n^2)
   per-bit has_edge closure. *)
(* bcc-lint: allow kern/unsafe-index — unsafe_rows exposes the backing row array without copying; it takes no index argument *)
let bidirectional_core g = Bcc_kern.Graph.bidirectional_core (Digraph.unsafe_rows g)

let is_clique g vs = Digraph.is_bidirectional_clique g vs

(* Bron-Kerbosch with pivoting on bitset neighborhoods, running on
   Bcc_kern.Graph's scratch stack (per-depth buffers, no allocation per
   node); same traversal and result as the allocating Bcc_kern.Ref
   version it is property-tested against. *)
let max_clique_core adj vertices = Bcc_kern.Graph.max_clique adj vertices

let max_clique g =
  let adj = bidirectional_core g in
  max_clique_core adj (Bitvec.ones (Digraph.vertex_count g))

let max_clique_of_subset g vs =
  let adj = bidirectional_core g in
  let mask = Bitvec.create (Digraph.vertex_count g) in
  Bitvec.set_indices mask vs;
  (* Restrict neighborhoods to the subset so the search never leaves it. *)
  let adj = Array.map (fun row -> Bitvec.logand row mask) adj in
  max_clique_core adj mask

let greedy_clique g graph =
  let n = Digraph.vertex_count graph in
  let order = Prng.permutation g n in
  let chosen = ref [] in
  Array.iter
    (fun v ->
      let ok =
        List.for_all
          (fun u -> Digraph.has_edge graph u v && Digraph.has_edge graph v u)
          !chosen
      in
      if ok then chosen := v :: !chosen)
    order;
  List.sort Int.compare !chosen

(* The degree-based recovery pipeline, over either representation.  The
   dense instantiation below reproduces the pre-functor implementations
   exactly: [top_degree_vertices] sorts the same (degree, vertex) array
   with the same comparator, and [extend_by_majority]'s scan counts —
   one increment per core occurrence of [v] plus one per bidirectional
   (core, v) edge pair — equal the per-vertex fold
   [#{u in core : u = v or (v <-> u)}] it replaces, so the selected
   vertex sets (and every EXP artifact built on them) are unchanged. *)
module Recover (B : Graph_backend.S) = struct
  let extend_by_majority g ~core ~threshold =
    let n = B.vertex_count g in
    let core_size = List.length core in
    if core_size = 0 then []
    else begin
      let need = int_of_float (Float.ceil (threshold *. float_of_int core_size)) in
      let counts = Array.make n 0 in
      List.iter
        (fun u ->
          if u < 0 || u >= n then invalid_arg "Clique: core vertex out of range";
          (* The [u = v] membership term of the fold. *)
          counts.(u) <- counts.(u) + 1;
          (* The bidirectional-adjacency term: u -> v here, v -> u
             checked per neighbour.  Rows have no diagonal, so the two
             terms never double-count. *)
          B.iter_out g u (fun v ->
              if B.has_edge g v u then counts.(v) <- counts.(v) + 1))
        core;
      let result = ref [] in
      for v = n - 1 downto 0 do
        if counts.(v) >= need then result := v :: !result
      done;
      !result
    end

  let top_degree_vertices g k =
    let n = B.vertex_count g in
    let ds = B.degree_sums g in
    let degs = Array.init n (fun i -> (ds.(i), i)) in
    Array.sort (fun (a, _) (b, _) -> Int.compare b a) degs;
    List.sort Int.compare (Array.to_list (Array.map snd (Array.sub degs 0 (min k n))))

  let degree_recover g ~k =
    (* The refinement can oscillate on signal-free instances; cap the
       iteration count — convergence happens in a few steps when the
       clique is recoverable at all. *)
    let rec stabilize current budget =
      if budget = 0 then current
      else begin
        let next = extend_by_majority g ~core:current ~threshold:0.75 in
        if next = current || next = [] then next else stabilize next (budget - 1)
      end
    in
    stabilize (top_degree_vertices g k) 20
end

module Dense_recover = Recover (Graph_backend.Dense)

let extend_by_majority = Dense_recover.extend_by_majority
let top_degree_vertices = Dense_recover.top_degree_vertices

let log_clique_size_bound n =
  int_of_float (Float.ceil (2.0 *. Float.log (float_of_int (max 2 n)) /. Float.log 2.0))

(* Enumerate size-k cliques of the bidirectional core by depth-first
   extension in increasing vertex order; stop at the first hit.  Worst case
   C(n,k), i.e. n^{O(log n)} for k = O(log n) — the naive algorithm's
   complexity the paper quotes. *)
let find_clique_of_size adj n k =
  let rec extend chosen candidates need =
    if need = 0 then Some (List.rev chosen)
    else begin
      let rec try_from = function
        | [] -> None
        | v :: rest -> begin
            let candidates' = List.filter (fun u -> Bitvec.get adj.(v) u) rest in
            match extend (v :: chosen) candidates' (need - 1) with
            | Some c -> Some c
            | None -> try_from rest
          end
      in
      try_from candidates
    end
  in
  extend [] (List.init n (fun i -> i)) k

let quasi_poly_find g ~seed_size =
  let n = Digraph.vertex_count g in
  let adj = bidirectional_core g in
  match find_clique_of_size adj n seed_size with
  | None -> []
  | Some seed ->
      (* Extend by majority adjacency to the seed, then stabilize. *)
      let candidate = extend_by_majority g ~core:seed ~threshold:0.9 in
      extend_by_majority g ~core:candidate ~threshold:0.9

let degree_recover = Dense_recover.degree_recover
