module type S = sig
  type t

  val vertex_count : t -> int
  val edge_count : t -> int
  val has_edge : t -> int -> int -> bool
  val out_degree : t -> int -> int
  val iter_out : t -> int -> (int -> unit) -> unit
  val count_common_out_neighbors : t -> int -> int -> int
  val degree_sums : t -> int array
  val count_triangles : t -> int
  val count_k4 : t -> int
end

module Dense = struct
  type t = Digraph.t

  let vertex_count = Digraph.vertex_count
  let edge_count = Digraph.edge_count
  let has_edge = Digraph.has_edge
  let out_degree = Digraph.out_degree
  let iter_out = Digraph.iter_out
  let count_common_out_neighbors = Digraph.count_common_out_neighbors

  let degree_sums g =
    Array.init (Digraph.vertex_count g) (fun i ->
        Digraph.out_degree g i + Digraph.in_degree g i)

  (* bcc-lint: allow kern/unsafe-index — unsafe_rows exposes the backing row array without copying; it takes no index argument *)
  let core g = Bcc_kern.Graph.bidirectional_core (Digraph.unsafe_rows g)
  let count_triangles g = Bcc_kern.Graph.count_triangles (core g)
  let count_k4 g = Bcc_kern.Graph.count_k4 (core g)
end

module Sparse_backend = struct
  type t = Sparse.t

  let vertex_count = Sparse.vertex_count
  let edge_count = Sparse.edge_count
  let has_edge = Sparse.has_edge
  let out_degree = Sparse.out_degree
  let iter_out = Sparse.iter_out
  let count_common_out_neighbors = Sparse.count_common_out_neighbors
  let degree_sums = Sparse.degree_sums

  let count_triangles t =
    Bcc_kern.Spgraph.count_triangles (Bcc_kern.Spgraph.bidirectional_core t)

  let count_k4 t =
    Bcc_kern.Spgraph.count_k4 (Bcc_kern.Spgraph.bidirectional_core t)
end
