let foi = float_of_int

let choose3 n = foi (n * (n - 1) * (n - 2)) /. 6.0

(* Each triangle (K4) is counted once as i < j < l (< m): the suffix
   constraint and the neighborhood intersections run as fused word counts
   in Bcc_kern.Graph — no allocation in the inner loops, same counts as
   the mask-materializing Bcc_kern.Ref versions. *)
let count g = Bcc_kern.Graph.count_triangles (Clique.bidirectional_core g)

let count_k4 g = Bcc_kern.Graph.count_k4 (Clique.bidirectional_core g)

(* Backend-parameterized counts; [Of (Graph_backend.Dense)] runs the
   same kernel pipeline as [count]/[count_k4] above. *)
module Of (B : Graph_backend.S) = struct
  let count = B.count_triangles
  let count_k4 = B.count_k4
end

(* The bidirectional core of A_rand is G(n, 1/4). *)
let p_core = 0.25

let expected_random n = choose3 n *. (p_core ** 3.0)

let stddev_random n =
  let p3 = p_core ** 3.0 in
  let p5 = p_core ** 5.0 in
  let p6 = p_core ** 6.0 in
  (* Variance = sum over triangle pairs of covariances: identical pairs
     contribute p^3(1-p^3); pairs sharing one edge (3(n-3) partners per
     triangle) contribute p^5 - p^6; disjoint or vertex-sharing pairs are
     independent. *)
  let t = choose3 n in
  let var = (t *. p3 *. (1.0 -. p3)) +. (t *. 3.0 *. foi (n - 3) *. (p5 -. p6)) in
  Float.sqrt var

let planted_excess ~n ~k =
  if k < 2 then 0.0
  else begin
    let c3k = choose3 k in
    let c2k = foi (k * (k - 1)) /. 2.0 in
    (* All-in-clique triangles become certain; two-in-clique triangles get
       their clique edge forced (1/64 -> 1/16); one-in-clique triangles
       contain no clique edge. *)
    (c3k *. (1.0 -. (p_core ** 3.0)))
    +. (c2k *. foi (n - k) *. ((p_core ** 2.0) -. (p_core ** 3.0)))
  end

let zscore ~n ~k =
  let s = stddev_random n in
  if s = 0.0 then Float.infinity else planted_excess ~n ~k /. s
