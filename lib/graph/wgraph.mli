(** Complete graphs with random edge weights, and minimum spanning trees.

    Section 9 proposes "constructing an MST on a complete graph with
    random weights" as a target distribution.  This module provides the
    substrate: symmetric weight matrices with i.i.d. uniform [0,1)
    weights, Prim's algorithm, and the Frieze ζ(3) law
    ([E[MST weight] → ζ(3) ≈ 1.2020569...]) the experiment checks —
    exactly the kind of sharply-concentrated statistic a BCAST lower bound
    for the problem would have to hide. *)

type t
(** A complete weighted graph on [{0..n-1}]; weights symmetric, diagonal
    0. *)

val random : Prng.t -> int -> t
(** I.i.d. uniform [0,1) weights. *)

val of_weights : float array array -> t
(** Symmetrized copy of the given matrix (upper triangle wins). *)

val size : t -> int
val weight : t -> int -> int -> float

val mst : t -> (int * int) list
(** Prim's algorithm: the n-1 tree edges, each as [(lo, hi)]. *)

val mst_weight : t -> float

val zeta3 : float
(** ζ(3) = 1.2020569..., the limit of [E[mst_weight]]. *)

val min_incident_weight : t -> int -> float
(** The cheapest edge at a vertex — what a single BCAST(log n) round can
    reveal, and the first Boruvka step. *)

val boruvka_round_components : t -> int
(** Number of components after one Boruvka round (every vertex grabs its
    cheapest edge): at most [n/2], typically much smaller — the round
    structure a distributed MST protocol exploits. *)
