let sample_rand g n =
  let graph = Digraph.create n in
  for i = 0 to n - 1 do
    (* [Prng.bitvec] writes whole 64-bit draws into the packed words;
       installing (not copying) the fresh row keeps the per-row cost at
       one allocation.  Stream order and the sampled graph are exactly
       the set_out_row path's. *)
    Digraph.install_out_row graph i (Prng.bitvec g n)
  done;
  graph

let sample_planted_at g n c =
  let graph = sample_rand g n in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i <> j then begin
            Digraph.add_edge graph i j;
            Digraph.add_edge graph j i
          end)
        c)
    c;
  graph

let sample_planted g ~n ~k =
  let c = Prng.subset g ~n ~k in
  (sample_planted_at g n c, c)

type instance = Uniform of Digraph.t | Planted of Digraph.t * int list

let sample_instance g ~n ~k =
  if Prng.bool g then Uniform (sample_rand g n)
  else begin
    let graph, c = sample_planted g ~n ~k in
    Planted (graph, c)
  end

let graph_of_instance = function Uniform g -> g | Planted (g, _) -> g

let is_planted = function Uniform _ -> false | Planted _ -> true

let interesting_k_range n =
  let log2n = int_of_float (Float.round (Float.log (float_of_int n) /. Float.log 2.0)) in
  let sqrtn = int_of_float (Float.sqrt (float_of_int n)) in
  (max 1 log2n, max 1 sqrtn)
