type t = { n : int; w : float array array }

let random g n =
  let w = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Prng.float g in
      w.(i).(j) <- v;
      w.(j).(i) <- v
    done
  done;
  { n; w }

let of_weights m =
  let n = Array.length m in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Wgraph.of_weights") m;
  let w = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      w.(i).(j) <- m.(i).(j);
      w.(j).(i) <- m.(i).(j)
    done
  done;
  { n; w }

let size t = t.n

let weight t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Wgraph.weight";
  t.w.(i).(j)

(* Prim with O(n^2) dense scan — right for complete graphs. *)
let mst t =
  if t.n <= 1 then []
  else begin
    let in_tree = Array.make t.n false in
    let best_cost = Array.make t.n Float.infinity in
    let best_from = Array.make t.n (-1) in
    in_tree.(0) <- true;
    for v = 1 to t.n - 1 do
      best_cost.(v) <- t.w.(0).(v);
      best_from.(v) <- 0
    done;
    let edges = ref [] in
    for _ = 1 to t.n - 1 do
      (* Cheapest fringe vertex. *)
      let pick = ref (-1) in
      for v = 0 to t.n - 1 do
        if (not in_tree.(v)) && (!pick < 0 || best_cost.(v) < best_cost.(!pick)) then
          pick := v
      done;
      let v = !pick in
      in_tree.(v) <- true;
      edges := (min v best_from.(v), max v best_from.(v)) :: !edges;
      for u = 0 to t.n - 1 do
        if (not in_tree.(u)) && t.w.(v).(u) < best_cost.(u) then begin
          best_cost.(u) <- t.w.(v).(u);
          best_from.(u) <- v
        end
      done
    done;
    List.rev !edges
  end

let mst_weight t = List.fold_left (fun acc (i, j) -> acc +. t.w.(i).(j)) 0.0 (mst t)

let zeta3 = 1.2020569031595942854

let min_incident_weight t v =
  let best = ref Float.infinity in
  for u = 0 to t.n - 1 do
    if u <> v && t.w.(v).(u) < !best then best := t.w.(v).(u)
  done;
  !best

let boruvka_round_components t =
  if t.n <= 1 then t.n
  else begin
    (* Union-find over the "grab your cheapest edge" step. *)
    let parent = Array.init t.n (fun i -> i) in
    let rec find x = if parent.(x) = x then x else (parent.(x) <- find parent.(x); find parent.(x)) in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then parent.(ra) <- rb
    in
    for v = 0 to t.n - 1 do
      let best = ref (-1) in
      for u = 0 to t.n - 1 do
        if u <> v && (!best < 0 || t.w.(v).(u) < t.w.(v).(!best)) then best := u
      done;
      union v !best
    done;
    let roots = Hashtbl.create 16 in
    for v = 0 to t.n - 1 do
      Hashtbl.replace roots (find v) ()
    done;
    Hashtbl.length roots
  end
