type community = int array

let sample g ~n ~p_in ~p_out =
  if p_in < 0.0 || p_in > 1.0 || p_out < 0.0 || p_out > 1.0 then
    invalid_arg "Sbm.sample: probabilities in [0,1]";
  (* Balanced labelling: a random permutation's first half is side 0. *)
  let perm = Prng.permutation g n in
  let labels = Array.make n 1 in
  for i = 0 to (n / 2) - 1 do
    labels.(perm.(i)) <- 0
  done;
  let graph = Digraph.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let p = if labels.(i) = labels.(j) then p_in else p_out in
        if Prng.bernoulli g p then Digraph.add_edge graph i j
      end
    done
  done;
  (graph, labels)

let sample_null g ~n =
  let graph = Digraph.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Prng.bool g then Digraph.add_edge graph i j
    done
  done;
  graph

let alignment a b =
  if Array.length a <> Array.length b then invalid_arg "Sbm.alignment: length mismatch";
  let n = Array.length a in
  if n = 0 then 1.0
  else begin
    let agree = ref 0 in
    Array.iteri (fun i la -> if la = b.(i) then incr agree) a;
    let direct = float_of_int !agree /. float_of_int n in
    Float.max direct (1.0 -. direct)
  end

(* Count edges between v and the members of a side, both directions. *)
let edges_to_side graph labels v side =
  let n = Digraph.vertex_count graph in
  let count = ref 0 in
  for u = 0 to n - 1 do
    if u <> v && labels.(u) = side then begin
      if Digraph.has_edge graph v u then incr count;
      if Digraph.has_edge graph u v then incr count
    end
  done;
  !count

let side_sizes labels =
  let zero = Array.fold_left (fun acc l -> if l = 0 then acc + 1 else acc) 0 labels in
  (zero, Array.length labels - zero)

let degree_profile_recover graph =
  let n = Digraph.vertex_count graph in
  let labels = Array.make n 1 in
  (* Seed: vertex 0 and its out-neighbourhood form side 0. *)
  labels.(0) <- 0;
  Digraph.iter_out graph 0 (fun u -> labels.(u) <- 0);
  (* Iterate normalized-majority reassignment. *)
  for _ = 1 to 4 do
    let updated = Array.copy labels in
    for v = 0 to n - 1 do
      let z, o = side_sizes labels in
      let to0 = edges_to_side graph labels v 0 in
      let to1 = edges_to_side graph labels v 1 in
      let rate0 = if z > 0 then float_of_int to0 /. float_of_int z else 0.0 in
      let rate1 = if o > 0 then float_of_int to1 /. float_of_int o else 0.0 in
      updated.(v) <- (if rate0 >= rate1 then 0 else 1)
    done;
    Array.blit updated 0 labels 0 n
  done;
  labels

let bisection_edge_statistic _g graph =
  let labels = degree_profile_recover graph in
  let n = Digraph.vertex_count graph in
  let within_edges = ref 0 and within_pairs = ref 0 in
  let across_edges = ref 0 and across_pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        if labels.(i) = labels.(j) then begin
          incr within_pairs;
          if Digraph.has_edge graph i j then incr within_edges
        end
        else begin
          incr across_pairs;
          if Digraph.has_edge graph i j then incr across_edges
        end
      end
    done
  done;
  let rate e p = if p = 0 then 0.0 else float_of_int e /. float_of_int p in
  rate !within_edges !within_pairs -. rate !across_edges !across_pairs
