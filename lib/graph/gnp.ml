let sample g ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gnp.sample: p in [0,1]";
  let graph = Digraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.bernoulli g p then begin
        Digraph.add_edge graph i j;
        Digraph.add_edge graph j i
      end
    done
  done;
  graph

let sample_fast g ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gnp.sample_fast: p in [0,1]";
  let graph = Digraph.create n in
  let total = n * (n - 1) / 2 in
  if p >= 1.0 then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Digraph.unsafe_add_edge graph i j;
        Digraph.unsafe_add_edge graph j i
      done
    done
  else if p > 0.0 && total > 0 then begin
    (* Enumerate unordered pairs row-major: pair index m belongs to row i
       while m < row_start_{i+1}, with row i holding (n-1-i) pairs.  The
       next edge is the current index advanced by a Geometric(p) skip;
       indices only grow, so decoding amortises to O(n) pointer pushes. *)
    let log1mp = Float.log (1.0 -. p) in
    let row = ref 0 in
    let row_start = ref 0 in
    let idx = ref (-1) in
    let continue = ref true in
    while !continue do
      let u = Prng.float g in
      let skip = Float.log (1.0 -. u) /. log1mp in
      (* [skip] is finite and >= 0; cap before truncating so the addition
         below cannot overflow when p is tiny and u is close to 1. *)
      let skip = int_of_float (Float.min skip (float_of_int total)) in
      idx := !idx + 1 + skip;
      if !idx >= total then continue := false
      else begin
        while !idx >= !row_start + (n - 1 - !row) do
          row_start := !row_start + (n - 1 - !row);
          incr row
        done;
        let i = !row in
        let j = i + 1 + (!idx - !row_start) in
        (* The loop structure guarantees 0 <= i < j < n, so the decoded
           skips write straight into the packed rows unchecked. *)
        Digraph.unsafe_add_edge graph i j;
        Digraph.unsafe_add_edge graph j i
      end
    done
  end;
  graph

let connectivity_threshold n = Float.log (float_of_int (max 2 n)) /. float_of_int n

let diameter_two_threshold n =
  Float.sqrt (2.0 *. Float.log (float_of_int (max 2 n)) /. float_of_int n)

let bfs_distances graph source =
  let n = Digraph.vertex_count graph in
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    Digraph.iter_out graph v (fun u ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u queue
        end)
  done;
  dist

let eccentricity graph v =
  let dist = bfs_distances graph v in
  let ecc = ref 0 and reachable = ref true in
  Array.iter
    (fun d -> if d < 0 then reachable := false else if d > !ecc then ecc := d)
    dist;
  if !reachable then Some !ecc else None

let diameter graph =
  let n = Digraph.vertex_count graph in
  let diam = ref 0 and connected = ref true in
  (try
     for v = 0 to n - 1 do
       match eccentricity graph v with
       | None ->
           connected := false;
           raise Exit
       | Some e -> if e > !diam then diam := e
     done
   with Exit -> ());
  if !connected then Some !diam else None

let is_connected graph =
  Digraph.vertex_count graph = 0
  ||
  let dist = bfs_distances graph 0 in
  Array.for_all (fun d -> d >= 0) dist

let largest_component_size graph =
  let n = Digraph.vertex_count graph in
  (* Union over both edge directions. *)
  let undirected = Digraph.copy graph in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Digraph.has_edge graph i j then Digraph.add_edge undirected j i
    done
  done;
  let seen = Array.make n false in
  let best = ref 0 in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let size = ref 0 in
      let queue = Queue.create () in
      Queue.add v queue;
      seen.(v) <- true;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        incr size;
        Digraph.iter_out undirected u (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w queue
            end)
      done;
      if !size > !best then best := !size
    end
  done;
  !best
