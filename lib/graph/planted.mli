(** The paper's input distributions on directed graphs (Section 1.3).

    [A_rand] — each off-diagonal entry an independent fair coin.
    [A_C]    — [A_rand] conditioned on the vertex set [C] being a
               (bidirectional) clique.
    [A_k]    — a uniform size-[k] set [C] is drawn, then [A_C].

    Samplers return both the graph and, where applicable, the planted set,
    so search experiments can score recovery. *)

val sample_rand : Prng.t -> int -> Digraph.t
(** A sample of [A_rand^n]. *)

val sample_planted_at : Prng.t -> int -> int list -> Digraph.t
(** [sample_planted_at g n c]: a sample of [A_C^n]. *)

val sample_planted : Prng.t -> n:int -> k:int -> Digraph.t * int list
(** A sample of [A_k^n] together with the planted set. *)

type instance =
  | Uniform of Digraph.t
  | Planted of Digraph.t * int list
      (** The decision problem's two cases, each drawn with probability 1/2
          by {!sample_instance}. *)

val sample_instance : Prng.t -> n:int -> k:int -> instance

val graph_of_instance : instance -> Digraph.t
val is_planted : instance -> bool

val interesting_k_range : int -> int * int
(** [(lo, hi)] ≈ [(log2 n, sqrt n)]: below [lo] random cliques of that size
    occur naturally; above [hi] degree counting finds the clique (Section
    1.2's discussion). *)
