(** Clique algorithms on directed graphs.

    All functions treat "clique" the way the paper does for directed
    graphs: a vertex set in which {e every ordered pair} is an edge.
    Internally they operate on the bidirectional core (the undirected graph
    with an edge wherever both directions exist).

    These are the local, unbounded-computation subroutines the BCAST
    protocols call: the maximum clique of the active subgraph in Theorem
    B.1, the greedy extension step of the naive algorithm mentioned in
    Section 1.2's "Planted Clique" discussion, and the degree-counting
    baseline that succeeds once [k >> sqrt n]. *)

val bidirectional_core : Digraph.t -> Bitvec.t array
(** Row [i] has bit [j] iff both [i -> j] and [j -> i] are present. *)

val max_clique : Digraph.t -> int list
(** Maximum clique via Bron-Kerbosch with pivoting.  Exponential in the
    worst case; fast on random graphs and on the [O(n p)]-vertex active
    subgraphs of Theorem B.1. *)

val max_clique_of_subset : Digraph.t -> int list -> int list
(** Maximum clique of the induced (bidirectional) subgraph on the given
    vertices. *)

val is_clique : Digraph.t -> int list -> bool

val greedy_clique : Prng.t -> Digraph.t -> int list
(** Randomized greedy: repeatedly add a random vertex adjacent (both
    directions) to all chosen so far. *)

(** The degree-based recovery pipeline over any {!Graph_backend.S}
    representation.  [Recover (Graph_backend.Dense)] is the module the
    dense functions below alias — same vertex sets, bit for bit — and
    [Recover (Graph_backend.Sparse_backend)] runs the identical algorithm
    text on the CSR at n = 10^5+ (experiment e30). *)
module Recover (B : Graph_backend.S) : sig
  val extend_by_majority : B.t -> core:int list -> threshold:float -> int list
  (** All vertices bidirectionally adjacent to at least [threshold]
      fraction of [core] (core members qualify by convention), by one
      scan over the core rows.  Sorted increasingly. *)

  val top_degree_vertices : B.t -> int -> int list
  (** The [k] vertices of highest total degree (in + out). *)

  val degree_recover : B.t -> k:int -> int list
  (** Kucera's baseline: top-[k] degrees, then majority refinement to a
      fixed point (budget-capped). *)
end

val extend_by_majority : Digraph.t -> core:int list -> threshold:float -> int list
(** The final step of Theorem B.1's algorithm: all vertices bidirectionally
    adjacent to at least [threshold] fraction of [core] (core members
    qualify by convention).  Sorted increasingly. *)

val top_degree_vertices : Digraph.t -> int -> int list
(** [top_degree_vertices g k]: the [k] vertices of highest total degree
    (in + out), the classical [k = Omega(sqrt n)] baseline. *)

val log_clique_size_bound : int -> int
(** [~ 2 log2 n], the size above which cliques stop appearing in random
    graphs; Theorem B.1 uses the fact that random graphs have no clique of
    size [10 log n]. *)

(** {1 Classical centralized baselines (Section 1.4's discussion)} *)

val quasi_poly_find : Digraph.t -> seed_size:int -> int list
(** The naive [n^{O(log n)}] algorithm the paper describes: search for a
    clique of size [seed_size ~ c log n] by bounded brute force, then
    extend it greedily to the whole planted clique by majority adjacency.
    Exhaustive over all [C(n, seed_size)] candidate seeds in the worst
    case (keep [seed_size] small); returns the best extension found. *)

val degree_recover : Digraph.t -> k:int -> int list
(** The [k = Omega(sqrt n)] baseline of Kucera: take the [k] highest-degree
    vertices, then iteratively keep vertices adjacent to at least 3/4 of
    the current candidate set until a fixed point.  Sorted output. *)
