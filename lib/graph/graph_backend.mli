(** The dense/sparse representation seam.

    {!S} is the slice of graph functionality the recovery algorithms and
    distinguisher statistics actually consume; [Clique.Recover],
    [Triangles.Of] and [Distinguishers.Generic] are functors over it, so
    the same algorithm text runs on the O(n^2)-bit {!Digraph} matrix and
    on the O(n + m) {!Sparse} CSR.  {!Dense} reproduces today's dense
    call paths {e exactly} (same kernels, same comparison order), which
    is what keeps the existing EXP artifact pins byte-identical after the
    parameterization; test/test_sparse.ml pins dense == sparse results on
    shared-seed graphs at n <= 512. *)

module type S = sig
  type t

  val vertex_count : t -> int

  val edge_count : t -> int
  (** Directed edge count ([Digraph.edge_count]'s convention). *)

  val has_edge : t -> int -> int -> bool
  val out_degree : t -> int -> int

  val iter_out : t -> int -> (int -> unit) -> unit
  (** Out-neighbours in ascending order; the callback must not mutate
      the graph. *)

  val count_common_out_neighbors : t -> int -> int -> int

  val degree_sums : t -> int array
  (** Per-vertex out + in degree — the top-degree recovery statistic. *)

  val count_triangles : t -> int
  (** Triangle count {e of the bidirectional core} ([Triangles.count]'s
      semantics). *)

  val count_k4 : t -> int
  (** K4 count of the bidirectional core. *)
end

module Dense : S with type t = Digraph.t
(** The bit-matrix backend: degree sums by row popcount + column scan,
    core/triangles/K4 via the packed {!Bcc_kern.Graph} kernels — the
    exact call path [Clique.bidirectional_core]/[Triangles.count] use. *)

module Sparse_backend : S with type t = Sparse.t
(** The CSR backend: merge/gallop row ops and the sharded
    {!Bcc_kern.Spgraph} kernels. *)
