(** The abstract lower-bound framework of Section 3, as a reusable API.

    The paper's recipe for proving that an input distribution [A_pseudo]
    is indistinguishable from [A_rand]:

    + write [A_pseudo] as an average of {e row-independent} distributions
      [{A_I}] over an index set [I] (fixing the clique location [C], the
      secret string [b], or the secret matrix [M]);
    + bound the progress function
      [L_progress^(t) = E_I ‖P_I^(t) − P_rand^(t)‖] turn by turn;
    + conclude [‖P(Π, A_pseudo) − P(Π, A_rand)‖ ≤ L_progress] by the
      triangle inequality.

    A {!decomposition} packages step 1; this module computes steps 2-3
    (by sampling, for any concrete protocol), so all three of the paper's
    instantiations — planted clique, toy PRG, full PRG — run through one
    code path, and new distributions can be plugged in. *)

type decomposition = {
  name : string;
  n : int;  (** Number of processors. *)
  input_bits : int;  (** Bits per processor input. *)
  sample_rand : Prng.t -> Bitvec.t array;
      (** A sample of [A_rand] (row-independent by construction). *)
  sample_index_inputs : Prng.t -> Bitvec.t array;
      (** Draw [I] and then a sample of [A_I] — i.e. a sample of
          [A_pseudo].  Row-independence given the index is the caller's
          obligation (it holds for all three of the paper's instances). *)
  sampler_for_index : Prng.t -> Prng.t -> Bitvec.t array;
      (** [sampler_for_index gi] draws an index [I] from [gi] and returns
          the row sampler of [A_I] with [I] held fixed — the two-stage
          decomposition {!progress_sampled} needs to estimate
          [E_I ‖P_I − P_rand‖] rather than [‖P_pseudo − P_rand‖]. *)
}

val planted_clique : n:int -> k:int -> decomposition
(** [A_k = E_{C} A_C] (Section 4). *)

val toy_prg : n:int -> k:int -> decomposition
(** [U_[b]]-rows vs uniform [(k+1)]-bit rows (Section 5/6). *)

val full_prg : Full_prg.params -> decomposition
(** [U_M]-rows vs uniform [m]-bit rows (Section 7). *)

val real_distance_sampled :
  decomposition -> Turn_model.protocol -> samples:int -> Prng.t -> float
(** [‖P(Π, A_pseudo) − P(Π, A_rand)‖] by histogram comparison — the
    quantity the theorems bound. *)

val progress_sampled :
  decomposition -> Turn_model.protocol -> indices:int -> samples:int -> Prng.t -> float
(** [L_progress]: the average over [indices] sampled [I] of the sampled
    transcript distance between [A_I] and [A_rand].  Always ≥ the real
    distance up to sampling noise (the Section 3 triangle inequality). *)

val noise_floor :
  decomposition -> Turn_model.protocol -> samples:int -> Prng.t -> float
(** The same-distribution control: the TV estimate between two independent
    [A_rand] histogram draws.  Subtract mentally from the estimates
    above. *)
