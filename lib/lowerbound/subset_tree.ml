type stats = {
  trials : int;
  prob_z_exceeds_3t : float;
  prob_hit_empty : float;
  mean_final_z : float;
  bad_edge_rate : float;
}

let foi = float_of_int
let log2 x = Float.log x /. Float.log 2.0

(* One walk down the subset tree; everything the trial contributes to the
   aggregate, so trials can run on any domain and be folded in trial
   order afterwards. *)
type walk_outcome = {
  w_exceeded : bool;
  w_empty : bool;
  w_z : float option; (* final Z when the walk survives to a leaf *)
  w_bad_edges : int;
  w_steps : int;
}

let simulate g ~d ~k ~trials =
  let n = Restriction.arity d in
  if k > n then invalid_arg "Subset_tree.simulate: k > n";
  let t = Float.max 1.0 (Restriction.deficit d) in
  (* Trials fan out via [Par]; [d] is only read.  The fold below runs in
     trial order, so the float sum (and thus the whole stats record) is
     identical for every domain count. *)
  let outcomes =
    Par.map_trials g ~trials (fun ~trial:_ gt ->
        let order = Prng.subset gt ~n ~k in
        let bad_edges = ref 0 and steps = ref 0 in
        let rec walk dom l = function
          | [] ->
              let z = foi (n - l) -. log2 (foi (Restriction.size dom)) in
              {
                w_exceeded = z > 3.0 *. t;
                w_empty = false;
                w_z = Some z;
                w_bad_edges = !bad_edges;
                w_steps = !steps;
              }
          | a :: rest -> begin
              incr steps;
              if Restriction.coordinate_entropy dom a < 0.9 then incr bad_edges;
              match Restriction.forced_ones dom [ a ] with
              | None ->
                  {
                    w_exceeded = true;
                    w_empty = true;
                    w_z = None;
                    w_bad_edges = !bad_edges;
                    w_steps = !steps;
                  }
              | Some dom' -> walk dom' (l + 1) rest
            end
        in
        walk d 0 order)
  in
  let exceeded = ref 0 and empties = ref 0 in
  let z_sum = ref 0.0 and z_count = ref 0 in
  let bad_edges = ref 0 and steps = ref 0 in
  Array.iter
    (fun o ->
      if o.w_exceeded then incr exceeded;
      if o.w_empty then incr empties;
      (match o.w_z with
      | Some z ->
          z_sum := !z_sum +. z;
          incr z_count
      | None -> ());
      bad_edges := !bad_edges + o.w_bad_edges;
      steps := !steps + o.w_steps)
    outcomes;
  {
    trials;
    prob_z_exceeds_3t = foi !exceeded /. foi trials;
    prob_hit_empty = foi !empties /. foi trials;
    mean_final_z = (if !z_count = 0 then Float.nan else !z_sum /. foi !z_count);
    bad_edge_rate = (if !steps = 0 then 0.0 else foi !bad_edges /. foi !steps);
  }

let fact_4_5_bad_edge_probability d =
  let n = Restriction.arity d in
  let bad = ref 0 in
  for j = 0 to n - 1 do
    if Restriction.coordinate_entropy d j < 0.9 then incr bad
  done;
  foi !bad /. foi n
