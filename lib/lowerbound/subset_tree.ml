type stats = {
  trials : int;
  prob_z_exceeds_3t : float;
  prob_hit_empty : float;
  mean_final_z : float;
  bad_edge_rate : float;
}

let foi = float_of_int
let log2 x = Float.log x /. Float.log 2.0

let simulate g ~d ~k ~trials =
  let n = Restriction.arity d in
  if k > n then invalid_arg "Subset_tree.simulate: k > n";
  let t = Float.max 1.0 (Restriction.deficit d) in
  let exceeded = ref 0 and empties = ref 0 in
  let z_sum = ref 0.0 and z_count = ref 0 in
  let bad_edges = ref 0 and steps = ref 0 in
  for _ = 1 to trials do
    let order = Prng.subset g ~n ~k in
    let rec walk dom l = function
      | [] ->
          let z = foi (n - l) -. log2 (foi (Restriction.size dom)) in
          z_sum := !z_sum +. z;
          incr z_count;
          if z > 3.0 *. t then incr exceeded
      | a :: rest -> begin
          incr steps;
          if Restriction.coordinate_entropy dom a < 0.9 then incr bad_edges;
          match Restriction.forced_ones dom [ a ] with
          | None ->
              incr empties;
              incr exceeded
          | Some dom' -> walk dom' (l + 1) rest
        end
    in
    walk d 0 order
  done;
  {
    trials;
    prob_z_exceeds_3t = foi !exceeded /. foi trials;
    prob_hit_empty = foi !empties /. foi trials;
    mean_final_z = (if !z_count = 0 then Float.nan else !z_sum /. foi !z_count);
    bad_edge_rate = (if !steps = 0 then 0.0 else foi !bad_edges /. foi !steps);
  }

let fact_4_5_bad_edge_probability d =
  let n = Restriction.arity d in
  let bad = ref 0 in
  for j = 0 to n - 1 do
    if Restriction.coordinate_entropy d j < 0.9 then incr bad
  done;
  foi !bad /. foi n
