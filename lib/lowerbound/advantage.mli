(** Distinguishing-advantage estimation for protocols and samplers.

    The paper's definition (footnote 5): an algorithm distinguishes [D1]
    from [D2] with advantage [eps] if, given a sample from a fair mixture,
    it guesses the source with probability [1/2 + eps].  For a Boolean
    test that equals [ (Pr_{D1}[accept] - Pr_{D2}[accept]) / 2 ]; the
    functions here report the acceptance-probability gap
    [Pr_{D1} - Pr_{D2}] itself, whose vanishing is what the theorems
    assert. *)

val protocol_gap :
  bool Bcast.protocol ->
  sample_yes:(Prng.t -> Bitvec.t array) ->
  sample_no:(Prng.t -> Bitvec.t array) ->
  trials:int ->
  Prng.t ->
  float
(** [Pr[out_0 = true | yes] - Pr[out_0 = true | no]], each estimated on
    [trials] runs.  Acceptance counting is trial-sliced — 64 trial
    outcomes pack into one word, popcounted — with the same per-trial
    [Prng.split] discipline as {!protocol_gap_scalar}, so the gap (and
    every [EXP_*.json] derived from it) is bit-identical to the scalar
    path at every domain count. *)

val protocol_gap_scalar :
  bool Bcast.protocol ->
  sample_yes:(Prng.t -> Bitvec.t array) ->
  sample_no:(Prng.t -> Bitvec.t array) ->
  trials:int ->
  Prng.t ->
  float
(** {!protocol_gap} with per-trial (unsliced) counting — the in-run
    equality oracle for the sliced path. *)

val transcript_tv_sampled :
  Turn_model.protocol ->
  sample_a:(Prng.t -> Bitvec.t array) ->
  sample_b:(Prng.t -> Bitvec.t array) ->
  samples:int ->
  Prng.t ->
  float
(** Empirical TV distance between the transcript distributions under the
    two input samplers.  Upward-biased by sampling noise; compare against
    a same-sampler control ({!transcript_tv_control}). *)

val transcript_tv_control :
  Turn_model.protocol -> sample:(Prng.t -> Bitvec.t array) -> samples:int -> Prng.t -> float
(** The TV estimate between two independent histogram draws from the
    {e same} sampler — the noise floor of {!transcript_tv_sampled}. *)

val best_threshold_advantage :
  statistic_a:float array -> statistic_b:float array -> float
(** The advantage of the best single-threshold test on the two empirical
    statistic samples (maximized over thresholds and direction); an
    estimate of the distinguishing power a statistic carries. *)
