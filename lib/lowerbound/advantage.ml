let foi = float_of_int

let protocol_gap proto ~sample_yes ~sample_no ~trials g =
  let rate sample =
    let hits = ref 0 in
    for _ = 1 to trials do
      let result = Bcast.run proto ~inputs:(sample g) ~rand:g in
      if result.Bcast.outputs.(0) then incr hits
    done;
    foi !hits /. foi trials
  in
  rate sample_yes -. rate sample_no

let transcript_tv_sampled proto ~sample_a ~sample_b ~samples g =
  let da = Turn_model.sampled_transcript_dist proto ~sample:sample_a ~samples g in
  let db = Turn_model.sampled_transcript_dist proto ~sample:sample_b ~samples g in
  Dist.tv_distance da db

let transcript_tv_control proto ~sample ~samples g =
  transcript_tv_sampled proto ~sample_a:sample ~sample_b:sample ~samples g

let best_threshold_advantage ~statistic_a ~statistic_b =
  (* Sweep every observed value as a threshold; the best advantage of the
     test [stat > thr] or its negation. *)
  let candidates = Array.append statistic_a statistic_b in
  let na = foi (Array.length statistic_a) and nb = foi (Array.length statistic_b) in
  let exceed arr thr =
    Array.fold_left (fun acc x -> if x > thr then acc + 1 else acc) 0 arr
  in
  let best = ref 0.0 in
  Array.iter
    (fun thr ->
      let pa = foi (exceed statistic_a thr) /. na in
      let pb = foi (exceed statistic_b thr) /. nb in
      let adv = Float.abs (pa -. pb) in
      if adv > !best then best := adv)
    candidates;
  !best
