let foi = float_of_int

(* One [Prng.split] child per trial, fanned out by [Par]: the gap is a
   function of [g]'s seed alone, independent of the domain count.  Each
   simulator run builds its own [Rand_counter]s inside the trial body,
   so nothing mutable crosses domains (protocol values whose [spawn]
   closes over shared mutable state must synchronise it — the in-repo
   protocols do). *)
let trial_outcomes proto ~sample branch ~trials =
  Par.map_trials branch ~trials (fun ~trial:_ gt ->
      let result = Bcast.run proto ~inputs:(sample gt) ~rand:gt in
      result.Bcast.outputs.(0))

let protocol_gap proto ~sample_yes ~sample_no ~trials g =
  (* Trial-sliced acceptance counting: outcomes of trials [64b, 64b+64)
     pack into one word (bit t iff trial 64b + t accepted) and the word
     is popcounted.  The slice width is a constant 64, never the lane
     count, and the count of set bits is the count of accepting trials,
     so the gap is bit-identical to {!protocol_gap_scalar}. *)
  (* bcc-lint: noalloc *)
  let rate branch sample =
    let outcomes = trial_outcomes proto ~sample branch ~trials in
    let hits = ref 0 in
    let b = ref 0 in
    let w = ref 0L in
    while !b < trials do
      let count = min 64 (trials - !b) in
      w := 0L;
      (* bcc-lint: allow kern/unsafe-index — !b + t < !b + count <= trials = Array.length outcomes (count = min 64 (trials - !b)) *)
      for t = 0 to count - 1 do
        if Array.unsafe_get outcomes (!b + t) then
          w := Int64.logor !w (Int64.shift_left 1L t)
      done;
      hits := !hits + Bitvec.popcount_word !w;
      b := !b + 64
    done;
    foi !hits /. foi trials
  in
  rate (Prng.split g 0) sample_yes -. rate (Prng.split g 1) sample_no

let protocol_gap_scalar proto ~sample_yes ~sample_no ~trials g =
  let rate branch sample =
    let hits =
      Par.map_reduce branch ~trials ~init:0
        ~f:(fun ~trial:_ gt ->
          let result = Bcast.run proto ~inputs:(sample gt) ~rand:gt in
          if result.Bcast.outputs.(0) then 1 else 0)
        ~reduce:( + )
    in
    foi hits /. foi trials
  in
  rate (Prng.split g 0) sample_yes -. rate (Prng.split g 1) sample_no

let transcript_tv_sampled proto ~sample_a ~sample_b ~samples g =
  let da = Turn_model.sampled_transcript_dist proto ~sample:sample_a ~samples g in
  let db = Turn_model.sampled_transcript_dist proto ~sample:sample_b ~samples g in
  Dist.tv_distance da db

let transcript_tv_control proto ~sample ~samples g =
  transcript_tv_sampled proto ~sample_a:sample ~sample_b:sample ~samples g

let best_threshold_advantage ~statistic_a ~statistic_b =
  (* Sweep every observed value as a threshold; the best advantage of the
     test [stat > thr] or its negation. *)
  let candidates = Array.append statistic_a statistic_b in
  let na = foi (Array.length statistic_a) and nb = foi (Array.length statistic_b) in
  let exceed arr thr =
    Array.fold_left (fun acc x -> if x > thr then acc + 1 else acc) 0 arr
  in
  let best = ref 0.0 in
  Array.iter
    (fun thr ->
      let pa = foi (exceed statistic_a thr) /. na in
      let pb = foi (exceed statistic_b thr) /. nb in
      let adv = Float.abs (pa -. pb) in
      if adv > !best then best := adv)
    candidates;
  !best
