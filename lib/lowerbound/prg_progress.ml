(* Joint-input enumeration: processor i's input is field i of a mixed-radix
   integer; each field indexes that processor's private input choices. *)

let enumerate_joint ~n ~choices_per ~input_of =
  let bits_total = n * choices_per in
  if bits_total > 20 then invalid_arg "Prg_progress: enumeration too large";
  let per = 1 lsl choices_per in
  let total = 1 lsl bits_total in
  Dist.uniform
    (List.init total (fun enc ->
         Array.init n (fun i -> input_of ((enc lsr (i * choices_per)) land (per - 1)))))

let enumerate_rand ~n ~k =
  enumerate_joint ~n ~choices_per:(k + 1) ~input_of:(Bitvec.of_int ~width:(k + 1))

let enumerate_pseudo ~n ~k ~b =
  if Bitvec.length b <> k then invalid_arg "Prg_progress.enumerate_pseudo";
  enumerate_joint ~n ~choices_per:k ~input_of:(fun x ->
      Toy_prg.extend ~x:(Bitvec.of_int ~width:k x) ~b)

let truncated proto ~turns = { proto with Turn_model.turns }

let expected_distance_exact proto ~n ~k ~turns =
  let proto = truncated proto ~turns in
  let p_rand = Turn_model.exact_transcript_dist proto (enumerate_rand ~n ~k) in
  let total = ref 0.0 in
  for bmask = 0 to (1 lsl k) - 1 do
    let b = Bitvec.of_int ~width:k bmask in
    let p_b = Turn_model.exact_transcript_dist proto (enumerate_pseudo ~n ~k ~b) in
    total := !total +. Dist.tv_distance p_rand p_b
  done;
  !total /. float_of_int (1 lsl k)

let theorem_5_1_bound ~n ~k = float_of_int n *. (2.0 ** (-.float_of_int k /. 2.0))

let mixture_distance_exact proto ~n ~k ~turns =
  let proto = truncated proto ~turns in
  let p_rand = Turn_model.exact_transcript_dist proto (enumerate_rand ~n ~k) in
  let components =
    List.init (1 lsl k) (fun bmask ->
        let b = Bitvec.of_int ~width:k bmask in
        (Turn_model.exact_transcript_dist proto (enumerate_pseudo ~n ~k ~b), 1.0))
  in
  Dist.tv_distance p_rand (Dist.mixture components)
