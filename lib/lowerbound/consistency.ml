type stats = {
  trials : int;
  speaks : int;
  mean_deficit : float;
  max_deficit : float;
  prob_deficit_exceeds : float;
}

let foi = float_of_int
let log2 x = Float.log x /. Float.log 2.0

let measure proto ~sample ~input_bits ~id ~turns ~trials g =
  if input_bits < 0 || input_bits > 18 then
    invalid_arg "Consistency.measure: input_bits in [0, 18]";
  if id < 0 || id >= proto.Turn_model.n then invalid_arg "Consistency.measure: bad id";
  let turns = min turns proto.Turn_model.turns in
  let candidates = List.init (1 lsl input_bits) (Bitvec.of_int ~width:input_bits) in
  (* Number of turns at which [id] speaks within the prefix. *)
  let speaks =
    let count = ref 0 in
    let t = ref id in
    while !t < turns do
      incr count;
      t := !t + proto.Turn_model.n
    done;
    !count
  in
  let slack = log2 (foi (max 2 trials)) in
  let sum_deficit = ref 0.0 and max_deficit = ref 0.0 and exceeds = ref 0 in
  for _ = 1 to trials do
    let inputs = sample g in
    let history = Turn_model.run proto ~inputs in
    let consistent =
      Turn_model.consistent_inputs proto ~id ~history ~upto_turn:turns candidates
    in
    let size = List.length consistent in
    (* The true input is always consistent, so [size >= 1]. *)
    let deficit = foi input_bits -. log2 (foi (max 1 size)) in
    sum_deficit := !sum_deficit +. deficit;
    if deficit > !max_deficit then max_deficit := deficit;
    if deficit > foi speaks +. slack then incr exceeds
  done;
  {
    trials;
    speaks;
    mean_deficit = !sum_deficit /. foi trials;
    max_deficit = !max_deficit;
    prob_deficit_exceeds = foi !exceeds /. foi trials;
  }
