type decomposition = {
  name : string;
  n : int;
  input_bits : int;
  sample_rand : Prng.t -> Bitvec.t array;
  sample_index_inputs : Prng.t -> Bitvec.t array;
  sampler_for_index : Prng.t -> Prng.t -> Bitvec.t array;
}

let planted_clique ~n ~k =
  let rows_of graph = Array.init n (Digraph.out_row graph) in
  {
    name = Printf.sprintf "planted-clique(n=%d,k=%d)" n k;
    n;
    input_bits = n;
    sample_rand = (fun g -> rows_of (Planted.sample_rand g n));
    sample_index_inputs = (fun g -> rows_of (fst (Planted.sample_planted g ~n ~k)));
    sampler_for_index =
      (fun gi ->
        let c = Prng.subset gi ~n ~k in
        fun g -> rows_of (Planted.sample_planted_at g n c));
  }

let toy_prg ~n ~k =
  {
    name = Printf.sprintf "toy-prg(n=%d,k=%d)" n k;
    n;
    input_bits = k + 1;
    sample_rand = (fun g -> Toy_prg.sample_inputs_rand g ~n ~k);
    sample_index_inputs = (fun g -> fst (Toy_prg.sample_inputs_pseudo g ~n ~k));
    sampler_for_index =
      (fun gi ->
        let b = Prng.bitvec gi k in
        fun g -> Array.init n (fun _ -> Toy_prg.sample_ub g ~b));
  }

let full_prg params =
  Full_prg.validate params;
  let n = params.Full_prg.n in
  {
    name =
      Printf.sprintf "full-prg(n=%d,k=%d,m=%d)" n params.Full_prg.k params.Full_prg.m;
    n;
    input_bits = params.Full_prg.m;
    sample_rand = (fun g -> Full_prg.sample_inputs_rand g params);
    sample_index_inputs = (fun g -> fst (Full_prg.sample_inputs_pseudo g params));
    sampler_for_index =
      (fun gi ->
        let secret = Full_prg.sample_secret gi params in
        fun g -> Array.init n (fun _ -> Full_prg.sample_um g secret));
  }

let check_protocol d proto =
  if proto.Turn_model.n <> d.n then
    invalid_arg "Framework: protocol/decomposition processor count mismatch"

let real_distance_sampled d proto ~samples g =
  check_protocol d proto;
  let p_rand =
    Turn_model.sampled_transcript_dist proto ~sample:d.sample_rand ~samples g
  in
  let p_pseudo =
    Turn_model.sampled_transcript_dist proto ~sample:d.sample_index_inputs ~samples g
  in
  Dist.tv_distance p_rand p_pseudo

let progress_sampled d proto ~indices ~samples g =
  check_protocol d proto;
  let p_rand =
    Turn_model.sampled_transcript_dist proto ~sample:d.sample_rand ~samples g
  in
  let total = ref 0.0 in
  for i = 1 to indices do
    let sampler = d.sampler_for_index (Prng.split g (7919 * i)) in
    let p_i =
      Turn_model.sampled_transcript_dist proto ~sample:sampler ~samples
        (Prng.split g ((7919 * i) + 1))
    in
    total := !total +. Dist.tv_distance p_rand p_i
  done;
  !total /. float_of_int indices

let noise_floor d proto ~samples g =
  check_protocol d proto;
  let a = Turn_model.sampled_transcript_dist proto ~sample:d.sample_rand ~samples g in
  let b =
    Turn_model.sampled_transcript_dist proto ~sample:d.sample_rand ~samples
      (Prng.split g 424242)
  in
  Dist.tv_distance a b
