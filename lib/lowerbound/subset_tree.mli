(** Monte-Carlo simulation of the subset tree from the proof of Claim 3.

    Claim 3 controls how fast the entropy gap
    [Z_{a_1..a_l} = (n - l) - log2 |D^{a_1..a_l}|] can grow as random
    coordinates are forced to 1: with probability [1 - O(t l / n)] the walk
    stays below [3t], and the edges taken are overwhelmingly "good"
    (coordinate entropy [>= 0.9]).  This module runs that walk on concrete
    domains so the claim's constants can be inspected. *)

type stats = {
  trials : int;
  prob_z_exceeds_3t : float;  (** Fraction of walks ending with [Z > 3t]. *)
  prob_hit_empty : float;  (** Walks that emptied the domain (counted as exceeding). *)
  mean_final_z : float;  (** Over walks that survived. *)
  bad_edge_rate : float;  (** Fraction of steps with coordinate entropy < 0.9. *)
}

val simulate : Prng.t -> d:Restriction.t -> k:int -> trials:int -> stats
(** Walk [k] random distinct coordinates down from [d]. *)

val fact_4_5_bad_edge_probability : Restriction.t -> float
(** Exact probability (over a uniform coordinate) that the first step out
    of [d] is a bad edge — Fact 4.5 bounds this by [O(t/n)]. *)
