let foi = float_of_int

(* Off-diagonal entry positions of an n x n adjacency matrix, in row-major
   order: (0,1), (0,2), ..., (n-1, n-2). *)
let off_diagonal_pairs n =
  List.concat_map
    (fun i -> List.filter_map (fun j -> if i <> j then Some (i, j) else None)
        (List.init n (fun j -> j)))
    (List.init n (fun i -> i))

let rows_of_assignment n pairs assignment forced =
  let rows = Array.init n (fun _ -> Bitvec.create n) in
  List.iteri
    (fun idx (i, j) ->
      let v = (assignment lsr idx) land 1 = 1 in
      Bitvec.set rows.(i) j v)
    pairs;
  List.iter (fun (i, j) -> Bitvec.set rows.(i) j true) forced;
  rows

let clique_pairs clique =
  List.concat_map
    (fun i -> List.filter_map (fun j -> if i <> j then Some (i, j) else None) clique)
    clique

let enumerate_matrices n forced =
  let forced_set = List.fold_left (fun acc p -> p :: acc) [] forced in
  let free =
    List.filter (fun p -> not (List.mem p forced_set)) (off_diagonal_pairs n)
  in
  let bits = List.length free in
  if bits > 20 then invalid_arg "Progress: enumeration too large (keep n <= 4)";
  Dist.uniform
    (List.init (1 lsl bits) (fun a -> rows_of_assignment n free a forced))

let enumerate_rand ~n = enumerate_matrices n []

let enumerate_planted ~n ~clique = enumerate_matrices n (clique_pairs clique)

let sample_rand_rows ~n g =
  let graph = Planted.sample_rand g n in
  Array.init n (Digraph.out_row graph)

let sample_planted_rows ~n ~k g =
  let graph, _ = Planted.sample_planted g ~n ~k in
  Array.init n (Digraph.out_row graph)

let truncate (proto : Turn_model.protocol) ~turns = { proto with Turn_model.turns }

let all_cliques n k =
  let acc = ref [] in
  let c = Array.init k (fun i -> i) in
  let rec loop () =
    acc := Array.to_list c :: !acc;
    let i = ref (k - 1) in
    while !i >= 0 && c.(!i) = n - k + !i do
      decr i
    done;
    if !i >= 0 then begin
      c.(!i) <- c.(!i) + 1;
      for j = !i + 1 to k - 1 do
        c.(j) <- c.(j - 1) + 1
      done;
      loop ()
    end
  in
  if k >= 1 && k <= n then loop ();
  !acc

let progress_exact proto ~n ~k ~turns =
  let proto = truncate proto ~turns in
  let p_rand = Turn_model.exact_transcript_dist proto (enumerate_rand ~n) in
  let cliques = all_cliques n k in
  let total =
    List.fold_left
      (fun acc c ->
        let p_c = Turn_model.exact_transcript_dist proto (enumerate_planted ~n ~clique:c) in
        acc +. Dist.tv_distance p_rand p_c)
      0.0 cliques
  in
  total /. foi (List.length cliques)

let real_distance_exact proto ~n ~k ~turns =
  let proto = truncate proto ~turns in
  let p_rand = Turn_model.exact_transcript_dist proto (enumerate_rand ~n) in
  let cliques = all_cliques n k in
  let mixture =
    Dist.mixture
      (List.map
         (fun c ->
           (Turn_model.exact_transcript_dist proto (enumerate_planted ~n ~clique:c), 1.0))
         cliques)
  in
  Dist.tv_distance p_rand mixture

let theorem_1_6_bound ~n ~k = foi (k * k) /. Float.sqrt (foi n)

let theorem_4_1_bound ~n ~k ~j =
  let log2n = Float.log (foi n) /. Float.log 2.0 in
  foi j *. foi (k * k) *. Float.sqrt ((foi j +. log2n) /. foi n)

let progress_sampled proto ~n ~k ~turns ~cliques ~samples g =
  let proto = truncate proto ~turns in
  let p_rand =
    Turn_model.sampled_transcript_dist proto ~sample:(sample_rand_rows ~n) ~samples g
  in
  let total = ref 0.0 in
  for _ = 1 to cliques do
    let c = Prng.subset g ~n ~k in
    let p_c =
      Turn_model.sampled_transcript_dist proto
        ~sample:(fun g ->
          let graph = Planted.sample_planted_at g n c in
          Array.init n (Digraph.out_row graph))
        ~samples g
    in
    total := !total +. Dist.tv_distance p_rand p_c
  done;
  !total /. foi cliques
