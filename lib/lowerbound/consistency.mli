(** Consistency sets [D_p] and their size concentration (Claims 2 and 4).

    After [t] turns, the set [D_p] of inputs to processor [i] consistent
    with the transcript [p] drives every restricted-domain lemma.  Claims
    2 and 4 assert that [D_p] is rarely small: if the processor has spoken
    [l] times, then with probability [1 − eps] over transcripts,
    [|D_p| ≥ 2^{bits − l} · eps] — each broadcast can cost about one bit
    of entropy, plus a logarithmic slack.

    This module measures that distribution on real protocols by exact
    enumeration of the processor's input space (keep [input_bits <= 18]). *)

type stats = {
  trials : int;
  speaks : int;  (** Number of turns the processor spoke within the prefix. *)
  mean_deficit : float;  (** Mean of [bits − log2 |D_p|]. *)
  max_deficit : float;
  prob_deficit_exceeds : float;
      (** Fraction of trials with deficit > [speaks + slack] where
          [slack = log2 trials] — the event Claims 2/4 call negligible. *)
}

val measure :
  Turn_model.protocol ->
  sample:(Prng.t -> Bitvec.t array) ->
  input_bits:int ->
  id:int ->
  turns:int ->
  trials:int ->
  Prng.t ->
  stats
(** Runs the protocol [trials] times on sampled inputs, truncating at
    [turns]; for each run enumerates all [2^input_bits] candidate inputs
    of processor [id] and counts the consistent ones. *)
