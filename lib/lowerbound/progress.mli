(** The progress-function machinery of Sections 3-4, made exact.

    For small [n] every input matrix can be enumerated, so the transcript
    distributions [P(Pi, A_rand)], [P(Pi, A_C)] and the progress function

      [L_progress^(t) = E_{C ~ S_k} ‖P_C^(t) − P_rand^(t)‖]

    are computed {e exactly} for any deterministic turn-model protocol.
    Theorem 1.6/4.1 bound these quantities; experiment E4 tabulates
    measured vs bound. *)

val enumerate_rand : n:int -> Bitvec.t array Dist.t
(** [A_rand^n] as an explicit distribution over row arrays ([2^{n(n-1)}]
    outcomes — keep [n <= 4]). *)

val enumerate_planted : n:int -> clique:int list -> Bitvec.t array Dist.t
(** [A_C^n], exactly. *)

val sample_rand_rows : n:int -> Prng.t -> Bitvec.t array
val sample_planted_rows : n:int -> k:int -> Prng.t -> Bitvec.t array
(** Row-array samplers of [A_rand] and [A_k] for the sampled variants. *)

val truncate : Turn_model.protocol -> turns:int -> Turn_model.protocol

val progress_exact : Turn_model.protocol -> n:int -> k:int -> turns:int -> float
(** [L_progress^(turns)] with both the clique average and the transcript
    distributions exact. *)

val real_distance_exact : Turn_model.protocol -> n:int -> k:int -> turns:int -> float
(** [‖P(Pi, A_k) − P(Pi, A_rand)‖] exactly; always [<= progress_exact]
    (the triangle-inequality relation of Section 3). *)

val theorem_1_6_bound : n:int -> k:int -> float
(** The one-round bound [k^2 / sqrt n] (constant 1, as printed). *)

val theorem_4_1_bound : n:int -> k:int -> j:int -> float
(** [j k^2 sqrt((j + log n)/n)]. *)

val progress_sampled :
  Turn_model.protocol ->
  n:int ->
  k:int ->
  turns:int ->
  cliques:int ->
  samples:int ->
  Prng.t ->
  float
(** Monte-Carlo [L_progress]: average over [cliques] sampled planted sets
    of the empirical TV distance between transcript histograms
    ([samples] runs per distribution). *)
