(** Exact verifiers for the statistical inequalities behind the lower
    bounds.

    Every lemma below is an inequality between an expectation over inputs /
    planted sets / secret strings and a closed-form bound.  For moderate
    arity all quantities are computed {e exactly} (full enumeration,
    Walsh-Hadamard where applicable), so the test suite can check the
    inequalities and the benchmark harness can report
    measured-vs-bound tables.  Each function returns
    [(measured, bound)]. *)

type check = { measured : float; bound : float }

val holds : check -> bool
(** [measured <= bound] with a small float tolerance. *)

(** {1 Unrestricted cube} *)

val lemma_1_10 : Boolfun.t -> check
(** [E_{i<-[n]} ‖f(U_n) − f(U_n^[i])‖ <= 2 sqrt(1/n)] — the constant 2
    follows the proof (Pinsker plus the factor-2 step). *)

val lemma_1_8 : ?max_cliques:int -> Prng.t -> Boolfun.t -> k:int -> check
(** [E_{C~S_k} ‖f(U_n) − f(U_n^C)‖ <= 2 k / sqrt(n - k)].  Exact when
    [C(n,k) <= max_cliques] (default 20000), otherwise a Monte-Carlo
    average over [max_cliques] sampled sets. *)

(** {1 Restricted domains (Section 4)} *)

val lemma_4_4 : Restriction.t -> Boolfun.t -> check
(** [E_{i<-[n]} ‖f(U_D) − f(U_D^[i])‖ <= 2t/n + 10 sqrt((t+1)/n)] for
    [|D| >= 2^{n-t}] — the explicit constants from the proof. *)

val lemma_4_3 : ?max_cliques:int -> Prng.t -> Restriction.t -> Boolfun.t -> k:int -> check
(** [E_{C~S_k} ‖f(U_D) − f(U_D^C)‖ <= c (k^2 t/n + k sqrt(t/n))] with the
    proof's constant [c = 12]; empty restricted supports count distance 1
    (the paper's convention). *)

(** {1 Fourier-based PRG lemmas (Sections 5-7)} *)

val lemma_5_2 : Boolfun.t -> check
(** [sum_{b in {0,1}^k} ‖f(U_{k+1}) − f(U_[b])‖^2 <= E f] for
    [f : {0,1}^{k+1} -> {0,1}]; computed exactly via the WHT identity
    [f^(S_b ∪ {k+1}) = E_{U_[b]} f − E_U f]. *)

val lemma_5_2_direct : Boolfun.t -> check
(** The same sum computed by direct enumeration of every [U_[b]] — a
    cross-check of the Fourier path. *)

val lemma_6_1 : Restriction.t -> Boolfun.t -> check
(** [E_{b~U_k} ‖f(U_[b],D) − f(U_{k+1},D)‖ <= 2^{-k/9}] for
    [|D| >= 2^{k/2}] (arity of [f] and [D] is [k+1]). *)

val lemma_7_3 : ?max_secrets:int -> Prng.t -> Boolfun.t -> k:int -> check
(** [E_M ‖f(U_m) − f(U_M)‖^2 <= 2^{-k} (m-k)^2 E f] where [m] is the arity
    of [f] and [M] ranges over [{0,1}^{k x (m-k)}].  Exact when
    [2^{k(m-k)} <= max_secrets] (default 65536), else Monte-Carlo. *)

val claim_5 : Restriction.t -> samples:int -> Prng.t -> float
(** Claim 5 support concentration: fraction of sampled [b] with
    [|N_b/N_D − 1/2| >= 2^{-k/8}] (should be at most ~[2^{-k/8}]).
    [Restriction.arity d = k + 1]. *)

val claim_8 : Restriction.t -> k:int -> samples:int -> Prng.t -> float
(** Claim 8, the full-PRG analogue: with [D] over [m]-bit strings
    ([m = Restriction.arity d]) and secrets [M ∈ {0,1}^{k×(m−k)}], the
    fraction of sampled [M] with
    [|N_M/N_D − 2^{−(m−k)}| >= 2^{−k/8} · 2^{−(m−k)}], where
    [N_M = |D ∩ range(U_M)|].  Should be at most ~[2^{−k/8}]. *)

(** {1 Structural inequalities} *)

val lemma_1_9 : (int * int) Dist.t -> (int * int) Dist.t -> check
(** The conditioning inequality (Lemma 1.9):
    [‖D − D'‖ <= ‖D_X − D'_X‖ + E_{a~D_X} ‖D_{X=a} − D'_{X=a}‖] for joint
    distributions on pairs.  [measured] is the left side, [bound] the
    right side, both computed exactly. *)

val claim_7 : ?max_prefix:int -> Prng.t -> Boolfun.t -> k:int -> j:int -> check
(** The hybrid step of Lemma 7.3 (Claim 7):
    [E_M ‖f(U_{M,j}) − f(U_{M,j+1})‖^2 <= 2^{-k} E f], where [U_{M,j}]
    leaves the first [m − j] bits uniform and generates the last [j] from
    the secret columns.  Exact over all secrets for small [k*(j+1)];
    Monte-Carlo with [max_prefix] samples otherwise (default 4096). *)

val fact_4_6_label_histogram : Restriction.t -> int array
(** Fact 4.6's edge labels on the root of the subset tree: element [l]
    counts coordinates [j] whose good-edge label is [l], i.e.
    [|Y| ∈ (2^{-l}, 2^{-l+1}]] where [Y = -log2(2 Pr[X_j = 1])]; element 0
    collects bad edges (entropy < 0.9).  Fact 4.6 bounds element [l] by
    [O(4^l t)]. *)

(** {1 Distribution helpers} *)

val dist_ub : b:Bitvec.t -> int Dist.t
(** The distribution [U_[b]] over integer-encoded [(x, x·b)] strings. *)

val expectation_ub : Boolfun.t -> b:Bitvec.t -> float
(** [E_{x ~ U_[b]} f(x)]. *)
