type check = { measured : float; bound : float }

let holds c = c.measured <= c.bound +. 1e-9

let sqrtf = Float.sqrt
let foi = float_of_int

let parity_int v = Bitvec.popcount_int v land 1 = 1

(* Iterate all size-k subsets of {0..n-1}. *)
let iter_subsets n k f =
  let c = Array.init k (fun i -> i) in
  let rec loop () =
    f (Array.to_list c);
    (* Advance to the next combination. *)
    let i = ref (k - 1) in
    while !i >= 0 && c.(!i) = n - k + !i do
      decr i
    done;
    if !i >= 0 then begin
      c.(!i) <- c.(!i) + 1;
      for j = !i + 1 to k - 1 do
        c.(j) <- c.(j - 1) + 1
      done;
      loop ()
    end
  in
  if k >= 0 && k <= n then loop ()

let count_subsets n k = Stats.choose_float n k

(* --- Lemma 1.10 --- *)

let lemma_1_10 f =
  let n = Boolfun.arity f in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. Boolfun.output_distance f [ i ]
  done;
  { measured = !total /. foi n; bound = 2.0 *. sqrtf (1.0 /. foi n) }

(* --- Lemma 1.8 --- *)

let average_over_cliques ?(max_cliques = 20000) g ~n ~k distance =
  if count_subsets n k <= foi max_cliques then begin
    let total = ref 0.0 and count = ref 0 in
    iter_subsets n k (fun c ->
        total := !total +. distance c;
        incr count);
    !total /. foi !count
  end
  else begin
    let total = ref 0.0 in
    for _ = 1 to max_cliques do
      total := !total +. distance (Prng.subset g ~n ~k)
    done;
    !total /. foi max_cliques
  end

let lemma_1_8 ?max_cliques g f ~k =
  let n = Boolfun.arity f in
  if k < 0 || k > n then invalid_arg "Lemma_verify.lemma_1_8";
  let measured =
    average_over_cliques ?max_cliques g ~n ~k (Boolfun.output_distance f)
  in
  { measured; bound = 2.0 *. foi k /. sqrtf (foi (max 1 (n - k))) }

(* --- Lemma 4.4 --- *)

let lemma_4_4 d f =
  let n = Boolfun.arity f in
  if Restriction.arity d <> n then invalid_arg "Lemma_verify.lemma_4_4: arity mismatch";
  let t = Float.max 1.0 (Restriction.deficit d) in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. Boolfun.output_distance_on f (Restriction.mem d) [ i ]
  done;
  {
    measured = !total /. foi n;
    bound = (2.0 *. t /. foi n) +. (10.0 *. sqrtf ((t +. 1.0) /. foi n));
  }

(* --- Lemma 4.3 --- *)

let lemma_4_3 ?max_cliques g d f ~k =
  let n = Boolfun.arity f in
  if Restriction.arity d <> n then invalid_arg "Lemma_verify.lemma_4_3: arity mismatch";
  let t = Float.max 1.0 (Restriction.deficit d) in
  let measured =
    average_over_cliques ?max_cliques g ~n ~k (fun c ->
        Boolfun.output_distance_on f (Restriction.mem d) c)
  in
  let kf = foi k and nf = foi n in
  { measured; bound = 12.0 *. ((kf *. kf *. t /. nf) +. (kf *. sqrtf (t /. nf))) }

(* --- U_[b] helpers --- *)

let dist_ub ~b =
  let k = Bitvec.length b in
  let bmask = Bitvec.to_int b in
  Dist.uniform
    (List.init (1 lsl k) (fun x ->
         x lor (if parity_int (x land bmask) then 1 lsl k else 0)))

let expectation_ub f ~b =
  let k = Bitvec.length b in
  if Boolfun.arity f <> k + 1 then invalid_arg "Lemma_verify.expectation_ub";
  let bmask = Bitvec.to_int b in
  let hits = ref 0 in
  for x = 0 to (1 lsl k) - 1 do
    let idx = x lor (if parity_int (x land bmask) then 1 lsl k else 0) in
    if Boolfun.eval_int f idx then incr hits
  done;
  foi !hits /. foi (1 lsl k)

(* --- Lemma 5.2 --- *)

let lemma_5_2 f =
  let kp1 = Boolfun.arity f in
  if kp1 < 1 then invalid_arg "Lemma_verify.lemma_5_2";
  let k = kp1 - 1 in
  let coeffs = Fourier.transform f in
  let total = ref 0.0 in
  for b = 0 to (1 lsl k) - 1 do
    let c = coeffs.(b lor (1 lsl k)) in
    total := !total +. (c *. c)
  done;
  { measured = !total; bound = Boolfun.bias f }

let lemma_5_2_direct f =
  let kp1 = Boolfun.arity f in
  let k = kp1 - 1 in
  let bias = Boolfun.bias f in
  let total = ref 0.0 in
  for bmask = 0 to (1 lsl k) - 1 do
    let b = Bitvec.of_int ~width:k bmask in
    let d = expectation_ub f ~b -. bias in
    total := !total +. (d *. d)
  done;
  { measured = !total; bound = bias }

(* --- Lemma 6.1 --- *)

let lemma_6_1 d f =
  let kp1 = Boolfun.arity f in
  if Restriction.arity d <> kp1 then invalid_arg "Lemma_verify.lemma_6_1: arity mismatch";
  let k = kp1 - 1 in
  let mem = Restriction.mem d in
  let bias_d = Boolfun.bias_on f mem in
  let total = ref 0.0 in
  for bmask = 0 to (1 lsl k) - 1 do
    (* E[f] over the support of U_[b] intersected with D. *)
    let hits = ref 0 and size = ref 0 in
    for x = 0 to (1 lsl k) - 1 do
      let idx = x lor (if parity_int (x land bmask) then 1 lsl k else 0) in
      if mem idx then begin
        incr size;
        if Boolfun.eval_int f idx then incr hits
      end
    done;
    (* Footnote convention: empty intersection means U_{[b],D} := U_D,
       contributing distance 0. *)
    let dist =
      if !size = 0 then 0.0 else Float.abs ((foi !hits /. foi !size) -. bias_d)
    in
    total := !total +. dist
  done;
  { measured = !total /. foi (1 lsl k); bound = 2.0 ** (-.foi k /. 9.0) }

(* --- Lemma 7.3 --- *)

let expectation_um f ~k ~cols =
  (* cols.(j) is the k-bit mask of secret column j. *)
  let hits = ref 0 in
  for x = 0 to (1 lsl k) - 1 do
    let idx = ref x in
    Array.iteri
      (fun j col -> if parity_int (x land col) then idx := !idx lor (1 lsl (k + j)))
      cols;
    if Boolfun.eval_int f !idx then incr hits
  done;
  foi !hits /. foi (1 lsl k)

let lemma_7_3 ?(max_secrets = 65536) g f ~k =
  let m = Boolfun.arity f in
  if k < 1 || k >= m then invalid_arg "Lemma_verify.lemma_7_3: need 1 <= k < arity";
  let mc = m - k in
  let bias = Boolfun.bias f in
  let secret_bits = k * mc in
  let distance_sq cols =
    let d = expectation_um f ~k ~cols -. bias in
    d *. d
  in
  let measured =
    if secret_bits <= 26 && 1 lsl secret_bits <= max_secrets then begin
      let total = ref 0.0 in
      for enc = 0 to (1 lsl secret_bits) - 1 do
        let cols = Array.init mc (fun j -> (enc lsr (j * k)) land ((1 lsl k) - 1)) in
        total := !total +. distance_sq cols
      done;
      !total /. foi (1 lsl secret_bits)
    end
    else begin
      let total = ref 0.0 in
      for _ = 1 to max_secrets do
        let cols = Array.init mc (fun _ -> Prng.int g (1 lsl k)) in
        total := !total +. distance_sq cols
      done;
      !total /. foi max_secrets
    end
  in
  { measured; bound = (2.0 ** -.foi k) *. foi (mc * mc) *. bias }

(* --- Lemma 1.9 --- *)

let lemma_1_9 d d' =
  let measured = Dist.tv_distance d d' in
  let dx = Dist.map fst d and dx' = Dist.map fst d' in
  let marginal_term = Dist.tv_distance dx dx' in
  (* Union of observed y values, for the footnote's uniform fallback. *)
  let y_support =
    List.sort_uniq Int.compare (List.map snd (Dist.support d @ Dist.support d'))
  in
  let conditional dist a =
    match Dist.condition dist (fun (x, _) -> x = a) with
    | Some c -> Dist.map snd c
    | None -> Dist.uniform y_support
  in
  let conditional_term =
    Dist.expectation dx (fun a ->
        Dist.tv_distance (conditional d a) (conditional d' a))
  in
  { measured; bound = marginal_term +. conditional_term }

(* --- Claim 7 --- *)

(* E over U_{M,j} of f, where the last [j] output bits are generated from
   the secret columns [cols] (cols.(0) = v_1 = the last output bit). *)
let expectation_hybrid f ~k ~m ~j cols =
  let free = m - j in
  let hits = ref 0 in
  for x = 0 to (1 lsl free) - 1 do
    let xk = x land ((1 lsl k) - 1) in
    let idx = ref x in
    (* Output bit m-1-i is x^{(k)} . v_{i+1} = x^{(k)} . cols.(i). *)
    for i = 0 to j - 1 do
      if parity_int (xk land cols.(i)) then idx := !idx lor (1 lsl (m - 1 - i))
    done;
    if Boolfun.eval_int f !idx then incr hits
  done;
  foi !hits /. foi (1 lsl free)

let claim_7 ?(max_prefix = 4096) g f ~k ~j =
  let m = Boolfun.arity f in
  if k < 1 || j < 0 || j >= m - k then invalid_arg "Lemma_verify.claim_7";
  let bias = Boolfun.bias f in
  let secret_bits = k * (j + 1) in
  let distance_sq cols =
    (* cols has j+1 entries: v_1 .. v_{j+1}; U_{M,j} uses the first j. *)
    let ej = expectation_hybrid f ~k ~m ~j (Array.sub cols 0 j) in
    let ej1 = expectation_hybrid f ~k ~m ~j:(j + 1) cols in
    let d = ej -. ej1 in
    d *. d
  in
  let measured =
    if secret_bits <= 22 && 1 lsl secret_bits <= max_prefix * 64 then begin
      let total = ref 0.0 in
      for enc = 0 to (1 lsl secret_bits) - 1 do
        let cols = Array.init (j + 1) (fun i -> (enc lsr (i * k)) land ((1 lsl k) - 1)) in
        total := !total +. distance_sq cols
      done;
      !total /. foi (1 lsl secret_bits)
    end
    else begin
      let total = ref 0.0 in
      for _ = 1 to max_prefix do
        let cols = Array.init (j + 1) (fun _ -> Prng.int g (1 lsl k)) in
        total := !total +. distance_sq cols
      done;
      !total /. foi max_prefix
    end
  in
  { measured; bound = (2.0 ** -.foi k) *. bias }

(* --- Fact 4.6 --- *)

let fact_4_6_label_histogram d =
  let n = Restriction.arity d in
  let histogram = Array.make 31 0 in
  for j = 0 to n - 1 do
    let h = Restriction.coordinate_entropy d j in
    if h < 0.9 then histogram.(0) <- histogram.(0) + 1
    else begin
      let p = Restriction.coordinate_one_prob d j in
      let y = Float.abs (-.(Float.log (2.0 *. p) /. Float.log 2.0)) in
      let label =
        if y <= Float.of_int 2 ** -30.0 then 30
        else
          (* smallest l >= 1 with y <= 2^{-l+1}, i.e. y in (2^-l, 2^-l+1]. *)
          let l = int_of_float (Float.ceil (-.(Float.log y /. Float.log 2.0))) in
          max 1 (min 30 l)
      in
      histogram.(label) <- histogram.(label) + 1
    end
  done;
  histogram

(* --- Claim 5 --- *)

let claim_8 d ~k ~samples g =
  let m = Restriction.arity d in
  if k < 1 || k >= m then invalid_arg "Lemma_verify.claim_8: need 1 <= k < arity";
  let mc = m - k in
  let n_d = foi (Restriction.size d) in
  let target = 2.0 ** -.foi mc in
  let tol = (2.0 ** (-.foi k /. 8.0)) *. target in
  let violations = ref 0 in
  for _ = 1 to samples do
    let cols = Array.init mc (fun _ -> Prng.int g (1 lsl k)) in
    (* N_M: seeds whose expansion lands in D. *)
    let n_m = ref 0 in
    for x = 0 to (1 lsl k) - 1 do
      let idx = ref x in
      Array.iteri
        (fun j col -> if parity_int (x land col) then idx := !idx lor (1 lsl (k + j)))
        cols;
      if Restriction.mem d !idx then incr n_m
    done;
    if Float.abs ((foi !n_m /. n_d) -. target) >= tol then incr violations
  done;
  foi !violations /. foi samples

let claim_5 d ~samples g =
  let kp1 = Restriction.arity d in
  let k = kp1 - 1 in
  let n_d = foi (Restriction.size d) in
  let tol = 2.0 ** (-.foi k /. 8.0) in
  let violations = ref 0 in
  for _ = 1 to samples do
    let bmask = Prng.int g (1 lsl k) in
    let n_b = ref 0 in
    for x = 0 to (1 lsl k) - 1 do
      let idx = x lor (if parity_int (x land bmask) then 1 lsl k else 0) in
      if Restriction.mem d idx then incr n_b
    done;
    if Float.abs ((foi !n_b /. n_d) -. 0.5) >= tol then incr violations
  done;
  foi !violations /. foi samples
