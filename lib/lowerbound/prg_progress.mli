(** Exact verification of the toy-PRG indistinguishability (Theorem 5.1).

    For small [n] and [k] everything in Theorem 5.1 can be enumerated: the
    uniform case's [2^{n(k+1)}] joint inputs, each secret [b]'s [2^{nk}]
    joint inputs, and hence the exact transcript distributions
    [P_rand] and [P_[b]] of any deterministic turn-model protocol.  The
    theorem bounds the one-round quantity by [E_b ‖P_rand − P_[b]‖
    <= n 2^{-k/2}]; this module computes the left side exactly. *)

val enumerate_rand : n:int -> k:int -> Bitvec.t array Dist.t
(** Case (A): every processor's input uniform on [{0,1}^{k+1}].
    [n*(k+1) <= 20]. *)

val enumerate_pseudo : n:int -> k:int -> b:Bitvec.t -> Bitvec.t array Dist.t
(** Case (B) with the secret fixed: every processor's input uniform on the
    support of [U_[b]].  [n*k <= 20]. *)

val expected_distance_exact :
  Turn_model.protocol -> n:int -> k:int -> turns:int -> float
(** [E_{b ~ U_k} ‖P_rand^(turns) − P_[b]^(turns)‖], every quantity exact
    (all [2^k] secrets, all joint inputs). *)

val theorem_5_1_bound : n:int -> k:int -> float
(** [n * 2^{-k/2}] — the right side of Theorem 5.1 for a full round of
    [n] turns. *)

val mixture_distance_exact :
  Turn_model.protocol -> n:int -> k:int -> turns:int -> float
(** [‖P_rand − E_b P_[b]‖] exactly — the distance an actual distinguisher
    faces; at most {!expected_distance_exact} by the triangle
    inequality. *)
